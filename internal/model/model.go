// Package model implements Valiant's parallel comparison model for the
// equivalence class sorting problem.
//
// In this model the only operation that costs anything is an equivalence
// test between two elements; all bookkeeping between comparison rounds is
// free. A Session wraps an Oracle (the ground truth, or an adaptive
// adversary) and executes batches of tests as parallel rounds, charging one
// round per batch and one comparison per test. The session enforces the
// rules of the variant being run:
//
//   - ER (exclusive read): each element may appear in at most one
//     comparison per round, because the elements themselves perform the
//     tests (e.g. agents running a secret-handshake protocol).
//   - CR (concurrent read): an element may appear in any number of
//     comparisons per round, because elements are passive objects (e.g.
//     graphs being tested for isomorphism).
//
// A Session can also enforce the p-processor budget of the model: a logical
// round with more than p comparisons is split into ⌈m/p⌉ physical rounds.
package model

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	rt "ecsort/internal/runtime"
)

// Mode selects the read-concurrency rule of the comparison model.
type Mode int

const (
	// ER is the exclusive-read variant: disjoint comparisons per round.
	ER Mode = iota
	// CR is the concurrent-read variant: arbitrary comparisons per round.
	CR
)

// String returns "ER" or "CR".
func (m Mode) String() string {
	switch m {
	case ER:
		return "ER"
	case CR:
		return "CR"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Oracle answers equivalence tests over elements 0..N()-1.
//
// Implementations must be safe for concurrent use by multiple goroutines;
// a Session may issue the tests of one round in parallel. Adaptive oracles
// (lower-bound adversaries) typically serialize internally with a mutex and
// should be run with Workers(1) for reproducible answers.
type Oracle interface {
	// N returns the number of elements.
	N() int
	// Same reports whether elements i and j are in the same equivalence
	// class. It is never called with i == j.
	Same(i, j int) bool
}

// BatchOracle is an optional Oracle capability: answer a whole chunk of
// equivalence tests in one call. A Session detects it once at
// construction (a plain type assertion on the oracle) and then
// dispatches whole worker-pool chunks instead of individual pairs, so
// an oracle whose answers have per-call overhead — a network round
// trip, a protocol handshake wave, a middleware cycle — pays that
// overhead once per chunk rather than once per pair. Accounting is
// unchanged: comparisons, rounds, max round size, round logs, and
// therefore partition fingerprints are bit-identical to the per-pair
// path.
//
// SameBatch must write out[i] = Same(pairs[i].A, pairs[i].B) for every
// i < len(pairs), with len(out) >= len(pairs), and must not retain
// either slice. Like Same it must be safe for concurrent use: a
// parallel round calls SameBatch concurrently on disjoint chunks.
type BatchOracle interface {
	Oracle
	// SameBatch answers pairs[i] into out[i] for one chunk of a
	// physical round.
	SameBatch(pairs []Pair, out []bool)
}

// Pair is a single equivalence test between elements A and B.
type Pair struct {
	A, B int
}

// Stats summarizes the cost charged to a session so far.
type Stats struct {
	// Comparisons is the total number of equivalence tests executed.
	Comparisons int64
	// Rounds is the number of physical parallel rounds executed.
	// Sequential Compare calls count one round each.
	Rounds int
	// MaxRoundSize is the largest number of comparisons in one physical
	// round.
	MaxRoundSize int
}

// Errors reported by Session.Round for malformed batches. These indicate a
// bug in the calling algorithm, not a property of the input.
var (
	ErrOutOfRange  = errors.New("model: element index out of range")
	ErrSelfCompare = errors.New("model: element compared with itself")
	ErrERConflict  = errors.New("model: element used twice in one ER round")
)

// ErrExecutorResults reports a custom Executor that returned a result
// slice of the wrong length — an executor bug that would otherwise be
// silently papered over with false answers.
var ErrExecutorResults = errors.New("model: executor returned wrong result count")

// ErrBadWorkers reports a negative Workers value — a caller bug.
// Workers panics with an error wrapping this sentinel.
var ErrBadWorkers = errors.New("model: negative Workers")

// Option configures a Session.
type Option func(*Session)

// Executor runs the tests of one physical round and returns the answers
// in order. Custom executors let a session delegate execution to an
// external substrate — e.g. a simulated distributed agent network that
// performs real pairwise protocols — while the session keeps accounting
// and rule enforcement. The executor is called with at most one round's
// tests at a time; it may run them concurrently.
type Executor interface {
	ExecuteRound(pairs []Pair) []bool
}

// WithExecutor routes round execution through e instead of calling the
// oracle directly. The oracle is still consulted for N() and by Compare.
func WithExecutor(e Executor) Option {
	return func(s *Session) { s.executor = e }
}

// WithRoundLog records the size of every physical round, retrievable via
// RoundLog. Off by default (long sequential runs would log one entry per
// comparison).
func WithRoundLog() Option {
	return func(s *Session) { s.logRounds = true }
}

// Processors caps the number of comparisons per physical round at p. A
// logical round with more comparisons is split into ⌈m/p⌉ physical rounds
// (the split preserves ER-disjointness). p <= 0 means "n processors", the
// paper's default.
func Processors(p int) Option {
	return func(s *Session) { s.procs = p }
}

// Workers sets the parallel width of a round: the maximum number of
// chunks a physical round is split into on the session's runtime pool.
// Workers(0) restores the default, runtime.GOMAXPROCS(0) at session
// creation. Use Workers(1) when the oracle's answers depend on query
// order (adaptive adversaries). Negative values are a caller bug and
// panic with an error wrapping ErrBadWorkers.
//
// Actual concurrency is bounded by the pool's width, not by Workers: on
// the default shared pool that is GOMAXPROCS, so an oracle that blocks
// in Same (RPCs, timed waits) and wants more in-flight tests per round
// than cores needs a session on a wider dedicated pool — WithPool over
// runtime.NewPool(w) overlaps w blocking tests even at GOMAXPROCS=1.
func Workers(w int) Option {
	return func(s *Session) {
		switch {
		case w > 0:
			s.workers = w
		case w == 0:
			s.workers = runtime.GOMAXPROCS(0)
		default:
			panic(fmt.Errorf("%w: Workers(%d); use 0 for the GOMAXPROCS default", ErrBadWorkers, w))
		}
	}
}

// WithPool executes the session's parallel rounds on p instead of the
// process-wide shared runtime pool. Sessions never own their pool: a
// pool outlives the sessions that run on it (the sharded service shares
// one pool across every collection), and closing it is the creator's
// job.
func WithPool(p *rt.Pool) Option {
	return func(s *Session) { s.pool = p }
}

// WithContext binds ctx to the session: cancellation is checked between
// physical rounds, so a batch in flight finishes its current round (the
// runtime pool drains cleanly) and the next round returns ctx.Err().
// Sequential algorithms built on Compare must poll Err themselves —
// Compare cannot report cancellation.
func WithContext(ctx context.Context) Option {
	return func(s *Session) { s.ctx = ctx }
}

// Session executes equivalence tests against an Oracle under the rules of
// Valiant's model, accounting rounds and comparisons.
//
// A Session is not safe for concurrent use: algorithms issue rounds one at
// a time (the parallelism is inside a round, not across rounds).
type Session struct {
	oracle   Oracle
	mode     Mode
	n        int
	procs    int
	workers  int
	executor Executor
	pool     *rt.Pool
	ctx      context.Context // nil means never cancelled
	exec     roundExec       // persistent chunk runner, reused every round

	logRounds bool
	roundLog  []int

	stats Stats

	// scratch for ER-disjointness checks, reused across rounds.
	lastUsed []int // lastUsed[e] == round stamp when e last appeared
	stamp    int
}

// NewSession creates a session over the given oracle and mode.
func NewSession(o Oracle, mode Mode, opts ...Option) *Session {
	s := &Session{
		oracle:  o,
		mode:    mode,
		n:       o.N(),
		workers: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.exec.oracle = o
	// Batch capability is resolved once here, not per round: execute and
	// RunChunk branch on a plain nil check in the hot path.
	s.exec.batch, _ = o.(BatchOracle)
	if s.procs <= 0 {
		s.procs = s.n
	}
	if s.procs < 1 {
		s.procs = 1
	}
	s.lastUsed = make([]int, s.n)
	for i := range s.lastUsed {
		s.lastUsed[i] = -1
	}
	return s
}

// Mode returns the session's read-concurrency mode.
func (s *Session) Mode() Mode { return s.mode }

// N returns the number of elements in the underlying oracle.
func (s *Session) N() int { return s.n }

// Stats returns the cost accounted so far.
func (s *Session) Stats() Stats { return s.stats }

// RestoreStats seeds the session's accumulated cost, replacing whatever
// has been accounted so far. It exists for recovery: a service rebuilding
// a collection from a checkpoint restores the checkpointed cost here, so
// stats keep counting bit-identically from where the crashed process left
// off. Restore a fresh session before issuing rounds; overwriting live
// accounting mid-sort is a caller bug.
func (s *Session) RestoreStats(st Stats) { s.stats = st }

// SetContext rebinds the session's cancellation context; Algorithm
// values install their Sort ctx here before issuing rounds. A nil ctx
// removes the binding (never cancelled).
func (s *Session) SetContext(ctx context.Context) { s.ctx = ctx }

// Context returns the session's cancellation context, never nil.
func (s *Session) Context() context.Context {
	if s.ctx == nil {
		//ecsort:ignore ctxflow contract fallback: unbound sessions are documented as never-cancelled
		return context.Background()
	}
	return s.ctx
}

// Err reports the session context's cancellation state: nil while live,
// the context's error once cancelled. Round and RoundBuf consult it
// between physical rounds; sequential algorithms built on Compare must
// poll it in their own loops.
func (s *Session) Err() error {
	if s.ctx == nil {
		return nil
	}
	return s.ctx.Err()
}

// Round executes one logical round of equivalence tests and returns the
// answers, results[i] corresponding to pairs[i]. In ER mode every element
// may appear at most once in pairs. If the batch exceeds the processor
// budget it is split into several physical rounds. An empty batch costs
// nothing.
func (s *Session) Round(pairs []Pair) ([]bool, error) {
	return s.RoundBuf(pairs, nil)
}

// RoundBuf is Round with a caller-provided result buffer: when buf has
// enough capacity the answers are written into it and no allocation
// happens, so a merge loop can reuse one buffer across every round it
// issues. The returned slice aliases buf in that case. A nil (or too
// small) buf behaves exactly like Round.
//
// Validation is fused with execution: ER batches are checked up front
// (the disjointness rule spans the whole logical round), while CR batches
// are validated one physical round at a time, immediately before that
// chunk executes, so the pairs are walked once while cache-hot. A
// malformed pair in a later chunk of a CR batch therefore surfaces only
// after the earlier chunks have executed and been charged — malformed
// batches indicate a bug in the calling algorithm, not a recoverable
// condition, so partial accounting on that path is acceptable.
//
//ecsort:hotpath
func (s *Session) RoundBuf(pairs []Pair, buf []bool) ([]bool, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	if s.mode == ER {
		if err := s.validateER(pairs); err != nil {
			return nil, err
		}
	}
	var results []bool
	if cap(buf) >= len(pairs) {
		results = buf[:len(pairs)]
	} else {
		results = make([]bool, len(pairs))
	}
	for start := 0; start < len(pairs); start += s.procs {
		if err := s.Err(); err != nil {
			return nil, err
		}
		end := min(start+s.procs, len(pairs))
		chunk := pairs[start:end]
		if s.mode == CR {
			if err := s.validateCR(chunk); err != nil {
				return nil, err
			}
		}
		if err := s.execute(chunk, results[start:end]); err != nil {
			return nil, err
		}
		s.stats.Rounds++
		s.stats.Comparisons += int64(end - start)
		if end-start > s.stats.MaxRoundSize {
			s.stats.MaxRoundSize = end - start
		}
		if s.logRounds {
			s.roundLog = append(s.roundLog, end-start)
		}
	}
	return results, nil
}

// RoundLog returns the sizes of all physical rounds executed so far, in
// order. Empty unless the session was built WithRoundLog. The returned
// slice is owned by the session; callers must not modify it.
func (s *Session) RoundLog() []int { return s.roundLog }

// Compare executes a single sequential equivalence test, charged as one
// comparison in its own round. It panics on out-of-range or self
// comparisons, which are always caller bugs.
//
//ecsort:hotpath
func (s *Session) Compare(i, j int) bool {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		panic(ErrOutOfRange)
	}
	if i == j {
		panic(ErrSelfCompare)
	}
	s.stats.Rounds++
	s.stats.Comparisons++
	if s.stats.MaxRoundSize < 1 {
		s.stats.MaxRoundSize = 1
	}
	if s.logRounds {
		s.roundLog = append(s.roundLog, 1)
	}
	return s.oracle.Same(i, j)
}

// validateER checks a whole ER batch: range, self-comparison, and the
// exclusive-read disjointness rule, which spans the full logical round.
func (s *Session) validateER(pairs []Pair) error {
	s.stamp++
	for _, p := range pairs {
		if p.A < 0 || p.A >= s.n || p.B < 0 || p.B >= s.n {
			return fmt.Errorf("%w: pair (%d,%d), n=%d", ErrOutOfRange, p.A, p.B, s.n)
		}
		if p.A == p.B {
			return fmt.Errorf("%w: element %d", ErrSelfCompare, p.A)
		}
		if s.lastUsed[p.A] == s.stamp {
			return fmt.Errorf("%w: element %d", ErrERConflict, p.A)
		}
		if s.lastUsed[p.B] == s.stamp {
			return fmt.Errorf("%w: element %d", ErrERConflict, p.B)
		}
		s.lastUsed[p.A] = s.stamp
		s.lastUsed[p.B] = s.stamp
	}
	return nil
}

// validateCR checks one CR physical-round chunk: range and
// self-comparison only — CR has no per-round usage rule, so validation
// needs no state and runs per chunk, right before execution.
func (s *Session) validateCR(pairs []Pair) error {
	n := s.n
	for _, p := range pairs {
		if uint(p.A) >= uint(n) || uint(p.B) >= uint(n) {
			return fmt.Errorf("%w: pair (%d,%d), n=%d", ErrOutOfRange, p.A, p.B, n)
		}
		if p.A == p.B {
			return fmt.Errorf("%w: element %d", ErrSelfCompare, p.A)
		}
	}
	return nil
}

// execute runs the tests of one physical round on the session's runtime
// pool (or via the custom executor, if set). The pool splits the pair
// slice into at most Workers chunks claimed by its persistent
// goroutines; answers are written by index, so results are bit-identical
// to Workers(1) no matter how chunks land on workers, and the steady
// state allocates nothing — no per-round goroutines, closures, or
// WaitGroups.
func (s *Session) execute(pairs []Pair, out []bool) error {
	if s.executor != nil {
		res := s.executor.ExecuteRound(pairs)
		if len(res) != len(pairs) {
			return fmt.Errorf("%w: %d results for %d tests", ErrExecutorResults, len(res), len(pairs))
		}
		copy(out, res)
		return nil
	}
	if s.workers <= 1 || len(pairs) < 2 {
		if s.exec.batch != nil {
			s.exec.batch.SameBatch(pairs, out)
			return nil
		}
		for i, p := range pairs {
			out[i] = s.oracle.Same(p.A, p.B)
		}
		return nil
	}
	// The shared pool is resolved lazily so sessions that never reach a
	// parallel round — Workers(1), custom executors, Compare-only runs —
	// don't spin up the process-wide workers.
	pool := s.pool
	if pool == nil {
		pool = rt.Shared()
	}
	s.exec.pairs, s.exec.out = pairs, out
	pool.Run(len(pairs), s.workers, &s.exec)
	s.exec.pairs, s.exec.out = nil, nil
	return nil
}

// roundExec adapts one physical round to the runtime's chunk interface.
// It lives inside the Session so taking its address never allocates.
type roundExec struct {
	oracle Oracle
	batch  BatchOracle // non-nil iff oracle implements BatchOracle
	pairs  []Pair
	out    []bool
}

// RunChunk implements runtime.Runner. A batch-capable oracle answers
// the whole chunk in one call — the amortization this interface exists
// for: oracle invocations per physical round drop from len(pairs) to
// runtime.NumChunks(len(pairs), workers).
//
//ecsort:hotpath
func (e *roundExec) RunChunk(lo, hi int) {
	if e.batch != nil {
		e.batch.SameBatch(e.pairs[lo:hi], e.out[lo:hi])
		return
	}
	pairs, out := e.pairs, e.out
	for i := lo; i < hi; i++ {
		out[i] = e.oracle.Same(pairs[i].A, pairs[i].B)
	}
}
