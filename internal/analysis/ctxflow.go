package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// CtxFlow keeps cancellation wired end to end. Library code that calls
// context.Background() (or context.TODO()) silently detaches itself
// from the caller's deadline — a sort that cannot be cancelled defeats
// the persistent-pool runtime's whole point. The analyzer enforces:
//
//   - context.Background()/context.TODO() appear only in main packages;
//     library code must thread the caller's context. Long-lived roots
//     (a service's own lifetime context) are opted out one line at a
//     time with //ecsort:ignore ctxflow <reason>.
//
//   - Exported entry points shaped like a sort (name starting with
//     Sort or Classify) in non-main library packages must accept a
//     context.Context or a *model.Session (which carries one), unless
//     they are documented "Deprecated:" compatibility wrappers.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background in library code; Sort-shaped entry points without a context",
	Run:  runCtxFlow,
}

var entryPointRE = regexp.MustCompile(`^(Sort|Classify)`)

func runCtxFlow(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcScope(file, func(fd *ast.FuncDecl) {
			deprecated := isDeprecated(fd.Doc)
			if !deprecated {
				checkEntryPoint(pass, fd)
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
					return true
				}
				if name := obj.Name(); name == "Background" || name == "TODO" {
					if deprecated {
						// Deprecated v1 wrappers keep their historic shape;
						// the context-threading v2 path is the fix.
						return true
					}
					pass.Reportf(call.Pos(),
						"context.%s() in library code detaches from the caller's deadline: accept and thread a context.Context (or suppress a deliberate lifetime root with //ecsort:ignore ctxflow <reason>)",
						name)
				}
				return true
			})
		})
	}
}

// checkEntryPoint flags exported Sort*/Classify* functions that accept
// neither a context nor a Session.
func checkEntryPoint(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil || !fd.Name.IsExported() || !entryPointRE.MatchString(fd.Name.Name) {
		return
	}
	obj := pass.Pkg.Info.Defs[fd.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if carriesContext(sig.Params().At(i).Type()) {
			return
		}
	}
	pass.Reportf(fd.Name.Pos(),
		"entry point %s accepts neither context.Context nor *model.Session: sorts must be cancellable (or mark the wrapper // Deprecated:)",
		fd.Name.Name)
}

// carriesContext reports whether a parameter type is context.Context, a
// *model.Session, or a type that embeds/carries one by name.
func carriesContext(t types.Type) bool {
	if named := namedBase(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil {
			path, name := obj.Pkg().Path(), obj.Name()
			if path == "context" && name == "Context" {
				return true
			}
			if name == "Session" && strings.HasSuffix(path, "internal/model") {
				return true
			}
		}
	}
	return false
}

// isDeprecated reports whether a doc comment carries a standard
// "Deprecated:" marker.
func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(doc.Text(), "Deprecated:")
}
