package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixturePkgs are the violation-seeding packages under testdata/src,
// loaded into the real module's type universe (so they can import
// ecsort/internal/model) and analyzed alongside it.
var fixturePkgs = []string{"oracleround", "hotalloc", "shardown", "ctxflow", "registrycomplete"}

var (
	fixOnce     sync.Once
	fixErr      error
	fixFindings []Finding
)

// fixtureFindings loads the module plus every fixture package once and
// runs the full analyzer suite over the union.
func fixtureFindings(t *testing.T) []Finding {
	t.Helper()
	fixOnce.Do(func() {
		m, err := LoadModule("../..")
		if err != nil {
			fixErr = err
			return
		}
		for _, name := range fixturePkgs {
			if _, err := m.LoadExtra(filepath.Join("testdata", "src", name), m.Path+"/internal/analysis/testdata/src/"+name); err != nil {
				fixErr = fmt.Errorf("fixture %s: %w", name, err)
				return
			}
		}
		fixFindings, fixErr = VetModule(m)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixFindings
}

var wantRE = regexp.MustCompile(`// want ([a-z]+(?: [a-z]+)*)\s*$`)

// wantsIn parses the `// want <analyzer>...` expectation comments of
// every .go file in dir into "file:line:analyzer" keys.
func wantsIn(t *testing.T, dir string) map[string]int {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string]int)
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(abs, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, analyzer := range strings.Fields(m[1]) {
				wants[fmt.Sprintf("%s:%d:%s", filepath.Join(abs, e.Name()), i+1, analyzer)]++
			}
		}
	}
	return wants
}

// checkAgainstWants compares findings landing in dir against dir's want
// comments, exactly — unexpected and missing findings both fail. The
// "ignore" pseudo-analyzer (malformed directive reports) is checked
// separately.
func checkAgainstWants(t *testing.T, findings []Finding, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, f := range findings {
		if filepath.Dir(f.Pos.Filename) != abs || f.Analyzer == "ignore" {
			continue
		}
		got[fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Analyzer)]++
	}
	want := wantsIn(t, dir)
	var keys []string
	for k := range got {
		keys = append(keys, k)
	}
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		if got[k] != want[k] {
			t.Errorf("%s: got %d finding(s), want %d", k, got[k], want[k])
		}
	}
}

func TestFixtures(t *testing.T) {
	findings := fixtureFindings(t)
	for _, name := range fixturePkgs {
		t.Run(name, func(t *testing.T) {
			checkAgainstWants(t, findings, filepath.Join("testdata", "src", name))
		})
	}
}

// TestMalformedIgnore pins that an //ecsort:ignore without a reason is
// itself a finding and suppresses nothing.
func TestMalformedIgnore(t *testing.T) {
	findings := fixtureFindings(t)
	file, err := filepath.Abs(filepath.Join("testdata", "src", "ctxflow", "ctxflow.go"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	line := 0
	for i, l := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(l) == "//ecsort:ignore ctxflow" {
			line = i + 1
			break
		}
	}
	if line == 0 {
		t.Fatal("fixture lost its reason-less //ecsort:ignore ctxflow line")
	}
	for _, f := range findings {
		if f.Analyzer == "ignore" && f.Pos.Filename == file && f.Pos.Line == line {
			return
		}
	}
	t.Errorf("no malformed-ignore finding at %s:%d", file, line)
}

// TestAPIDocFixture runs apidoc over the standalone mini-module with its
// own go.mod and api_surface.txt.
func TestAPIDocFixture(t *testing.T) {
	dir := filepath.Join("testdata", "apidocmod")
	findings, err := Vet(dir, APIDoc)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstWants(t, findings, dir)
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All))
	}
	two, err := ByName("hotalloc, ctxflow")
	if err != nil || len(two) != 2 || two[0] != HotAlloc || two[1] != CtxFlow {
		t.Fatalf("ByName(\"hotalloc, ctxflow\") = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") did not error")
	}
}

func TestVetLoadErrors(t *testing.T) {
	if _, err := Vet(filepath.Join("testdata", "does-not-exist")); err == nil {
		t.Fatal("Vet on a missing directory did not error")
	}
	if _, err := Vet("."); err == nil {
		// internal/analysis itself has no go.mod, so it is not a module root.
		t.Fatal("Vet on a non-module directory did not error")
	}
}
