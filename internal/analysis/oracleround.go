package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// OracleRound proves the accounting model's core invariant: equivalence
// tests happen only inside scheduled rounds. Outside internal/model and
// internal/core's round machinery, no code may call Oracle.Same or
// BatchOracle.SameBatch directly — every comparison must flow through
// model.Session so Result's comparison and round counts stay truthful.
// A method of a type that itself implements model.Oracle may delegate
// to an inner oracle (the wrapper pattern: recorders, adversaries, the
// service's sub-universe views and counting decorators); everything
// else is a finding.
var OracleRound = &Analyzer{
	Name: "oracleround",
	Doc:  "direct Oracle.Same/BatchOracle.SameBatch calls outside model.Session round machinery",
	Run:  runOracleRound,
}

// oracleRoundExempt lists the packages that ARE the round machinery.
var oracleRoundExempt = map[string]bool{
	"internal/model": true,
	"internal/core":  true,
}

func runOracleRound(pass *Pass) {
	rel := strings.TrimPrefix(pass.Pkg.Path, pass.Module.Path+"/")
	if oracleRoundExempt[rel] {
		return
	}
	oracleIface := lookupOracleInterface(pass)
	if oracleIface == nil {
		return
	}
	batchIface := lookupInterface(pass, "BatchOracle")
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcScope(file, func(fd *ast.FuncDecl) {
			// Delegation exemption: a method of an Oracle implementation
			// may call its inner oracle — that call IS the oracle's
			// answer, not an unaccounted comparison.
			if named := recvNamed(pass.Pkg, fd); named != nil {
				if types.Implements(named, oracleIface) || types.Implements(types.NewPointer(named), oracleIface) {
					return
				}
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := info.Selections[sel]
				if !ok || selection.Kind() != types.MethodVal {
					return true
				}
				recv := selection.Recv()
				switch {
				case sel.Sel.Name == "Same" && implementsOracle(recv, oracleIface) && isSameSig(selection.Obj()):
					pass.Reportf(call.Pos(),
						"direct Oracle.Same call on %s: comparisons must flow through model.Session (Round/RoundBuf/Compare) so Result stats stay truthful",
						types.TypeString(recv, types.RelativeTo(pass.Pkg.Types)))
				case batchIface != nil && sel.Sel.Name == "SameBatch" && implementsOracle(recv, batchIface) && isSameBatchSig(selection.Obj()):
					pass.Reportf(call.Pos(),
						"direct BatchOracle.SameBatch call on %s: batch answers must be scheduled as model.Session rounds",
						types.TypeString(recv, types.RelativeTo(pass.Pkg.Types)))
				}
				return true
			})
		})
	}
}

// lookupOracleInterface finds model.Oracle in the module universe, via
// this package's own declaration when analyzing internal/model itself.
func lookupOracleInterface(pass *Pass) *types.Interface {
	return lookupInterface(pass, "Oracle")
}

// lookupInterface resolves internal/model's named interface by name, or
// nil when the module has no model package (fixture mini-modules).
func lookupInterface(pass *Pass, name string) *types.Interface {
	model := pass.Module.Lookup(pass.Module.Path + "/internal/model")
	if model == nil {
		return nil
	}
	obj := model.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsOracle reports whether t (or *t) satisfies the interface.
func implementsOracle(t types.Type, iface *types.Interface) bool {
	if types.IsInterface(t) {
		// Interface-typed receivers: the static type must subsume the
		// oracle contract.
		return types.Implements(t, iface) || types.AssignableTo(t, iface)
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// isSameSig pins the exact Same(i, j int) bool shape, so unrelated Same
// methods (e.g. a set's Same(other Set)) never match even on types that
// coincidentally implement Oracle.
func isSameSig(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	isInt := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.Int
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return isInt(sig.Params().At(0).Type()) && isInt(sig.Params().At(1).Type()) && ok && b.Kind() == types.Bool
}

// isSameBatchSig pins the exact SameBatch(pairs []Pair, out []bool)
// shape — two slice parameters, the second of bools, no results — so a
// coincidental SameBatch method never matches. Pinning the name and
// shape (rather than flagging every method of a BatchOracle
// implementation) keeps ordinary calls like a middleware's Stats() off
// the report.
func isSameBatchSig(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	p0, ok0 := sig.Params().At(0).Type().Underlying().(*types.Slice)
	p1, ok1 := sig.Params().At(1).Type().Underlying().(*types.Slice)
	if !ok0 || !ok1 {
		return false
	}
	_, pairElem := p0.Elem().Underlying().(*types.Struct)
	b, okb := p1.Elem().Underlying().(*types.Basic)
	return pairElem && okb && b.Kind() == types.Bool
}
