package analysis

import "testing"

// BenchmarkEcsVet measures one full suite run — module load, type check,
// and all six analyzers over every package — which is what every tier-1
// test run and CI lint step pays.
func BenchmarkEcsVet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings, err := Vet("../..")
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("module not clean: %d finding(s)", len(findings))
		}
	}
}
