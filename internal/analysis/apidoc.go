package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// APIDoc keeps the committed API surface honest: every symbol frozen in
// api_surface.txt must carry a doc comment in the root package, and the
// v1 compatibility wrappers (SortCR, SortER, ...) must carry a standard
// "Deprecated:" marker pointing callers at the context-aware v2 entry
// points. The api-surface golden test already pins the shape; this
// analyzer pins the words.
var APIDoc = &Analyzer{
	Name: "apidoc",
	Doc:  "undocumented api_surface.txt symbols; v1 wrappers without Deprecated markers",
	Run:  runAPIDoc,
}

// deprecatedWrapperRE matches the v1 wrapper naming scheme: SortCR,
// SortER, ... but not the v2 Sort itself.
var deprecatedWrapperRE = regexp.MustCompile(`^Sort[A-Z]`)

// surfaceSymbol is one entry parsed from api_surface.txt.
type surfaceSymbol struct {
	key    string // "Sort" or "Classes.Class" for methods
	isFunc bool
}

// declDoc is what the package actually declares for a symbol.
type declDoc struct {
	pos ast.Node
	doc string
}

func runAPIDoc(pass *Pass) {
	if pass.Pkg.Path != pass.Module.Path {
		return
	}
	data, err := os.ReadFile(filepath.Join(pass.Module.Dir, "api_surface.txt"))
	if err != nil {
		// Modules without a committed surface (fixture mini-modules
		// excepted — theirs is mandatory content for the test) have
		// nothing to pin.
		return
	}
	symbols := parseSurface(string(data))
	docs := collectDocs(pass.Pkg)
	for _, sym := range symbols {
		d, ok := docs[sym.key]
		if !ok {
			// Surface drift (symbol gone) is the api-surface golden
			// test's finding, not ours.
			continue
		}
		if strings.TrimSpace(d.doc) == "" {
			pass.Reportf(d.pos.Pos(),
				"%s is part of the committed API surface (api_surface.txt) but has no doc comment", sym.key)
			continue
		}
		if sym.isFunc && deprecatedWrapperRE.MatchString(sym.key) && !strings.Contains(d.doc, "Deprecated:") {
			pass.Reportf(d.pos.Pos(),
				"v1 wrapper %s must carry a \"// Deprecated:\" marker pointing at the context-aware v2 entry point", sym.key)
		}
	}
}

// parseSurface extracts symbol keys from the api_surface.txt format:
// "const X = ...", "var X = ...", "func Name(...)",
// "func (r Recv[T]) Name(...)", "type X = alias", and
// "type X struct {" followed by field lines until "}".
func parseSurface(data string) []surfaceSymbol {
	var out []surfaceSymbol
	inStruct := false
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if inStruct {
			if line == "}" {
				inStruct = false
			}
			continue
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "const", "var":
			if len(fields) > 1 {
				out = append(out, surfaceSymbol{key: fields[1]})
			}
		case "type":
			if len(fields) > 1 {
				name, _, _ := strings.Cut(fields[1], "[")
				out = append(out, surfaceSymbol{key: name})
			}
			if strings.HasSuffix(line, "{") {
				inStruct = true
			}
		case "func":
			rest := strings.TrimPrefix(line, "func ")
			if strings.HasPrefix(rest, "(") {
				// Method: func (c Classes[T]) Class(i int) []T
				recv, sig, ok := strings.Cut(rest[1:], ")")
				if !ok {
					continue
				}
				recvFields := strings.Fields(recv)
				recvType := strings.TrimPrefix(recvFields[len(recvFields)-1], "*")
				recvType, _, _ = strings.Cut(recvType, "[")
				name, _, _ := strings.Cut(strings.TrimSpace(sig), "(")
				out = append(out, surfaceSymbol{key: recvType + "." + name, isFunc: true})
			} else {
				name, _, _ := strings.Cut(rest, "(")
				name, _, _ = strings.Cut(name, "[")
				out = append(out, surfaceSymbol{key: name, isFunc: true})
			}
		}
	}
	return out
}

// collectDocs indexes the package's top-level declarations by symbol key
// with their effective doc comment (a grouped decl's doc covers specs
// without their own).
func collectDocs(pkg *Package) map[string]declDoc {
	docs := make(map[string]declDoc)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				key := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					if recv := recvTypeName(d.Recv.List[0].Type); recv != "" {
						key = recv + "." + key
					}
				}
				docs[key] = declDoc{pos: d.Name, doc: d.Doc.Text()}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						doc := s.Doc.Text()
						if doc == "" {
							doc = d.Doc.Text()
						}
						docs[s.Name.Name] = declDoc{pos: s.Name, doc: doc}
					case *ast.ValueSpec:
						doc := s.Doc.Text()
						if doc == "" {
							doc = d.Doc.Text()
						}
						for _, name := range s.Names {
							docs[name.Name] = declDoc{pos: name, doc: doc}
						}
					}
				}
			}
		}
	}
	return docs
}

// recvTypeName unwraps a receiver type expression (*T, T[P], T) to its
// base identifier.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
