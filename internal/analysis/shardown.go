package analysis

import (
	"go/ast"
	"go/types"
)

// ShardOwn proves the single-writer discipline of the sharded service
// statically, where the race detector can only sample it:
//
//   - A struct field annotated //ecsort:owned-by-shard may be touched
//     only from (a) methods of its declaring struct, (b) functions
//     annotated //ecsort:shard-goroutine (the writer loop and its
//     helpers), or (c) function literals passed directly to a function
//     annotated //ecsort:shard-dispatch (Service.do, which executes
//     them on the owner goroutine). Any other access is a cross-
//     goroutine mutation waiting to happen.
//
//   - A field whose type comes from sync/atomic (atomic.Pointer,
//     atomic.Int64, ...) may appear only as the receiver of a method
//     call (.Load/.Store/.Add/...). Copying it, aliasing it, or
//     passing it by value is a non-atomic access that silently forks
//     the counter.
var ShardOwn = &Analyzer{
	Name: "shardown",
	Doc:  "shard-owned fields touched off their writer goroutine; non-atomic use of sync/atomic fields",
	Run:  runShardOwn,
}

func runShardOwn(pass *Pass) {
	facts := pass.vet.facts(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		funcScope(file, func(fd *ast.FuncDecl) {
			ctx := &shardCtx{pass: pass, facts: facts, fd: fd}
			ctx.allowedFn = facts.shardGo[fd]
			ctx.recv = recvNamed(pass.Pkg, fd)
			ctx.walk(fd.Body, ctx.allowedFn)
		})
	}
}

type shardCtx struct {
	pass      *Pass
	facts     *fileFacts
	fd        *ast.FuncDecl
	recv      *types.Named
	allowedFn bool
}

// walk descends fd's body tracking whether the current lexical region
// runs on the owner goroutine (inShard).
func (c *shardCtx) walk(n ast.Node, inShard bool) {
	if n == nil {
		return
	}
	switch node := n.(type) {
	case *ast.CallExpr:
		// Function literals handed to a //ecsort:shard-dispatch callee
		// execute on the owner goroutine.
		dispatch := c.isDispatchCall(node)
		c.walk(node.Fun, inShard)
		for _, arg := range node.Args {
			if lit, ok := arg.(*ast.FuncLit); ok && dispatch {
				c.walk(lit.Body, true)
				continue
			}
			c.walk(arg, inShard)
		}
		// The call expression itself may also be an atomic method call;
		// selector checks below handle receivers, so nothing more here.
		return
	case *ast.SelectorExpr:
		c.checkSelector(node, inShard)
		c.walk(node.X, inShard)
		return
	case *ast.CompositeLit:
		c.checkCompositeLit(node, inShard)
	}
	for _, child := range childNodes(n) {
		c.walk(child, inShard)
	}
}

// isDispatchCall reports whether the call's callee carries
// //ecsort:shard-dispatch.
func (c *shardCtx) isDispatchCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := c.pass.Pkg.Info.Uses[id]
	return obj != nil && c.facts.dispatch[obj]
}

// checkSelector enforces both rules on one field access.
func (c *shardCtx) checkSelector(sel *ast.SelectorExpr, inShard bool) {
	info := c.pass.Pkg.Info
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		// Method selections: if the receiver chain contains an atomic
		// field access, the nested SelectorExpr is checked on descent.
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	if c.facts.ownedVars[field] && !inShard && !c.isOwningMethod(field) {
		c.pass.Reportf(sel.Pos(),
			"field %s.%s is //ecsort:owned-by-shard: accessed outside its owning goroutine's methods (use the shard dispatch, or annotate the function //ecsort:shard-goroutine if it provably runs there)",
			fieldOwnerName(field), field.Name())
	}
	if isAtomicType(field.Type()) && !c.atomicUseOK(sel) {
		c.pass.Reportf(sel.Pos(),
			"non-atomic access to atomic field %s.%s: sync/atomic values may only be used as method-call receivers (.Load/.Store/...), never copied or aliased",
			fieldOwnerName(field), field.Name())
	}
}

// checkCompositeLit treats writing an owned field in a composite
// literal as an access (construction counts: &collection{srt: ...}).
func (c *shardCtx) checkCompositeLit(lit *ast.CompositeLit, inShard bool) {
	if inShard {
		return
	}
	info := c.pass.Pkg.Info
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field, ok := info.Uses[key].(*types.Var)
		if !ok || !field.IsField() {
			continue
		}
		if c.facts.ownedVars[field] && !c.isOwningMethod(field) {
			c.pass.Reportf(kv.Pos(),
				"field %s.%s is //ecsort:owned-by-shard: initialized outside its owning goroutine",
				fieldOwnerName(field), field.Name())
		}
	}
}

// isOwningMethod reports whether the enclosing declaration is a method
// on the struct that declares field.
func (c *shardCtx) isOwningMethod(field *types.Var) bool {
	if c.recv == nil {
		return false
	}
	st, ok := c.recv.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == field {
			return true
		}
	}
	return false
}

// fieldOwnerName best-effort names the struct declaring a field for
// messages.
func fieldOwnerName(field *types.Var) string {
	if field.Pkg() == nil {
		return "?"
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return name
			}
		}
	}
	return "?"
}

// atomicTypeNames are the sync/atomic value types whose every use must
// be a method call.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicType reports whether t is one of sync/atomic's value types.
func isAtomicType(t types.Type) bool {
	named := namedBase(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// atomicUseOK reports whether the atomic field selector is used as a
// method-call receiver: the parent expression must be sel.Method(...).
func (c *shardCtx) atomicUseOK(sel *ast.SelectorExpr) bool {
	parent := c.parentOf(sel)
	outerSel, ok := parent.(*ast.SelectorExpr)
	if !ok || outerSel.X != ast.Expr(sel) {
		return false
	}
	if selection, ok := c.pass.Pkg.Info.Selections[outerSel]; ok && selection.Kind() == types.MethodVal {
		grand := c.parentOf(outerSel)
		call, ok := grand.(*ast.CallExpr)
		return ok && call.Fun == ast.Expr(outerSel)
	}
	return false
}

// parentOf finds the immediate parent of target within the enclosing
// declaration.
func (c *shardCtx) parentOf(target ast.Node) ast.Node {
	var parent ast.Node
	var stack []ast.Node
	ast.Inspect(c.fd, func(n ast.Node) bool {
		if parent != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == target && len(stack) > 0 {
			parent = stack[len(stack)-1]
			return false
		}
		stack = append(stack, n)
		return true
	})
	return parent
}
