// Package analysis is the project-invariant static analyzer suite behind
// cmd/ecs-vet and the repo-root analysis_test.go. It type-checks every
// package in the module with nothing but the standard library (go/parser,
// go/ast, go/types, go/importer — no x/tools, matching the module's
// zero-dependency rule) and runs a set of analyzers that prove the
// properties the paper's accounting model and the perf work of PRs 3–4
// rely on, instead of merely sampling them with tests:
//
//   - oracleround: comparisons happen only inside model.Session rounds,
//     so Result stats stay truthful.
//   - hotalloc: functions annotated //ecsort:hotpath stay free of the
//     allocation patterns the alloc tests guard dynamically.
//   - shardown: shard-owned state is touched only on its owner
//     goroutine, and sync/atomic fields only through their methods.
//   - ctxflow: contexts thread through entry points instead of being
//     re-rooted with context.Background.
//   - apidoc: the committed API surface is documented and v1 wrappers
//     carry Deprecated markers.
//   - registrycomplete: every exported Algorithm constructor is wired
//     into the registry.
//
// Findings are suppressed, one line at a time, with
// //ecsort:ignore <analyzer> <reason> on (or immediately above) the
// offending line; the reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("ecsort/internal/core").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression facts for Files.
	Info *types.Info
}

// Module is a loaded Go module: every non-test package type-checked in
// one shared universe, so type identities compare across packages. It
// implements types.Importer for its own packages and delegates the
// standard library to the compiler's export data (with a from-source
// fallback for toolchains that ship none).
type Module struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Path is the module path from go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet

	std      types.Importer
	srcOnce  bool
	src      types.Importer
	pkgs     map[string]*Package
	loading  map[string]bool
	order    []string
	typeErrs []error
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule parses and type-checks every non-test package under dir,
// which must hold a go.mod. Directories named testdata and hidden
// directories are skipped, mirroring the go tool.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", abs, err)
	}
	match := moduleLineRE.FindSubmatch(gomod)
	if match == nil {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	m := &Module{
		Dir:     abs,
		Path:    string(match[1]),
		Fset:    token.NewFileSet(),
		std:     importer.Default(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs = append(dirs, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if _, err := m.load(m.importPathOf(d)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathOf maps a directory under the module root to its import path.
func (m *Module) importPathOf(dir string) string {
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// Packages returns the loaded packages in load order (a topological
// order of the import graph, ties broken by path).
func (m *Module) Packages() []*Package {
	out := make([]*Package, 0, len(m.order))
	for _, p := range m.order {
		out = append(out, m.pkgs[p])
	}
	return out
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.pkgs[path] }

// Import implements types.Importer: module-internal paths load (and
// type-check) from source in this module's universe; everything else is
// standard library, served from compiler export data when available and
// type-checked from GOROOT source otherwise.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if tp, err := m.std.Import(path); err == nil {
		return tp, nil
	}
	if !m.srcOnce {
		m.srcOnce = true
		m.src = importer.ForCompiler(m.Fset, "source", nil)
	}
	return m.src.Import(path)
}

// load parses and type-checks one module package, memoized.
func (m *Module) load(importPath string) (*Package, error) {
	if pkg, ok := m.pkgs[importPath]; ok {
		return pkg, nil
	}
	if m.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	m.loading[importPath] = true
	defer delete(m.loading, importPath)

	dir := m.Dir
	if importPath != m.Path {
		dir = filepath.Join(m.Dir, filepath.FromSlash(strings.TrimPrefix(importPath, m.Path+"/")))
	}
	pkg, err := m.check(importPath, dir)
	if err != nil {
		return nil, err
	}
	m.pkgs[importPath] = pkg
	m.order = append(m.order, importPath)
	return pkg, nil
}

// check parses dir's non-test files and type-checks them as importPath.
func (m *Module) check(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{Importer: m}
	tpkg, err := cfg.Check(importPath, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// LoadExtra parses and type-checks an out-of-tree directory (analyzer
// test fixtures under testdata/) as one extra package of this module's
// universe, so fixtures may import module packages and the standard
// library. The package is registered under importPath and analyzed like
// any other.
func (m *Module) LoadExtra(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := m.check(importPath, abs)
	if err != nil {
		return nil, err
	}
	m.pkgs[importPath] = pkg
	m.order = append(m.order, importPath)
	return pkg, nil
}
