package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// RegistryComplete keeps the algorithm registry exhaustive. The registry
// (internal/algo/registry.go) is the single dispatch point for the
// CLIs, the service, and Auto planning — an exported Algorithm
// constructor that never gets wired in is unreachable from every name-
// driven surface and silently missing from `ecs-bench -algo` sweeps.
// In any package that declares an interface named Algorithm and has a
// registry.go, every exported function returning that Algorithm must be
// referenced somewhere in registry.go.
var RegistryComplete = &Analyzer{
	Name: "registrycomplete",
	Doc:  "exported Algorithm constructors not wired into registry.go",
	Run:  runRegistryComplete,
}

func runRegistryComplete(pass *Pass) {
	algType := localAlgorithmInterface(pass.Pkg)
	if algType == nil {
		return
	}
	var registryFile *ast.File
	for _, file := range pass.Pkg.Files {
		if filepath.Base(pass.Module.Fset.Position(file.Pos()).Filename) == "registry.go" {
			registryFile = file
			break
		}
	}
	if registryFile == nil {
		return
	}
	// Everything registry.go references, by object.
	used := make(map[types.Object]bool)
	ast.Inspect(registryFile, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	for _, file := range pass.Pkg.Files {
		if file == registryFile {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			obj := pass.Pkg.Info.Defs[fd.Name]
			if obj == nil || !returnsType(obj, algType) {
				continue
			}
			if !used[obj] {
				pass.Reportf(fd.Name.Pos(),
					"exported Algorithm constructor %s is not referenced in registry.go: wire it into the registry so name-driven dispatch (CLIs, service, Auto) can reach it",
					fd.Name.Name)
			}
		}
	}
}

// localAlgorithmInterface returns the package's own interface type named
// Algorithm, or nil.
func localAlgorithmInterface(pkg *Package) types.Type {
	obj, ok := pkg.Types.Scope().Lookup("Algorithm").(*types.TypeName)
	if !ok {
		return nil
	}
	if _, isIface := obj.Type().Underlying().(*types.Interface); !isIface {
		return nil
	}
	return obj.Type()
}

// returnsType reports whether fn's results include typ (directly, not
// wrapped).
func returnsType(fn types.Object, typ types.Type) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), typ) {
			return true
		}
	}
	return false
}
