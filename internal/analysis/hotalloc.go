package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc proves the allocation discipline of the flat-core hot paths
// statically, complementing the AllocsPerRun tests that are skipped
// under -race. Inside a function annotated //ecsort:hotpath it flags:
//
//   - any call into package fmt (every fmt call allocates);
//   - map composite literals and make(map[...]...);
//   - make of slices and channels, unless the call sits under an if
//     whose condition checks cap(...) — the grow-on-demand arena idiom;
//   - append whose destination is a fresh local (declared nil, a slice
//     literal, or make without an explicit capacity) — growth that
//     reallocates every call instead of reusing arena backing; appends
//     to parameters, struct fields, and slices derived from them are
//     the arena pattern and stay legal;
//   - function literals declared inside a loop that capture the loop's
//     variables (a closure allocation per iteration);
//   - implicit interface conversions of non-pointer concrete values in
//     calls, assignments, and returns (boxing allocates).
//
// The hot path keeps its annotation honest: this analyzer checks what
// the PR 3/4 benchmarks measured, forever.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation patterns inside //ecsort:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	hot := pass.HotpathFuncs()
	if len(hot) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		funcScope(file, func(fd *ast.FuncDecl) {
			if !hot[fd] {
				return
			}
			h := &hotWalker{pass: pass, fd: fd, info: pass.Pkg.Info}
			h.walk(fd.Body, nil)
		})
	}
}

// hotWalker carries the loop stack so closures can be checked against
// the variables of every enclosing loop.
type hotWalker struct {
	pass *Pass
	fd   *ast.FuncDecl
	info *types.Info
}

// loopFrame records the variable objects one enclosing loop declares.
type loopFrame struct {
	vars map[types.Object]bool
}

func (h *hotWalker) walk(n ast.Node, loops []*loopFrame) {
	if n == nil {
		return
	}
	switch node := n.(type) {
	case *ast.ForStmt:
		frame := &loopFrame{vars: map[types.Object]bool{}}
		if init, ok := node.Init.(*ast.AssignStmt); ok {
			for _, lhs := range init.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := h.info.Defs[id]; obj != nil {
						frame.vars[obj] = true
					}
				}
			}
		}
		h.walk(node.Init, loops)
		h.walk(node.Cond, loops)
		h.walk(node.Post, loops)
		h.walk(node.Body, append(loops, frame))
		return
	case *ast.RangeStmt:
		frame := &loopFrame{vars: map[types.Object]bool{}}
		for _, e := range []ast.Expr{node.Key, node.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := h.info.Defs[id]; obj != nil {
					frame.vars[obj] = true
				}
			}
		}
		h.walk(node.X, loops)
		h.walk(node.Body, append(loops, frame))
		return
	case *ast.FuncLit:
		if captured := h.capturedLoopVar(node, loops); captured != "" {
			h.pass.Reportf(node.Pos(), "closure in hot path captures loop variable %s: allocates every iteration; hoist the closure or write by index", captured)
		} else if outer := h.capturedOuterVar(node); outer != "" {
			h.pass.Reportf(node.Pos(), "closure in hot path captures %s: capturing closures allocate; use a method on a reused struct instead", outer)
		}
		// Still walk the body: allocations inside the closure run on the
		// hot path too.
		h.walk(node.Body, loops)
		return
	case *ast.CompositeLit:
		if tv, ok := h.info.Types[node]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				h.pass.Reportf(node.Pos(), "map literal in hot path: allocates; use a slice-indexed table or a reused arena map")
			}
		}
	case *ast.CallExpr:
		h.checkCall(node)
	case *ast.AssignStmt:
		h.checkAssign(node)
	case *ast.ReturnStmt:
		h.checkReturn(node)
	case *ast.IfStmt:
		// Descend with the if recorded so make-under-cap-guard resolves.
		h.walk(node.Init, loops)
		h.walk(node.Cond, loops)
		h.walk(node.Body, loops)
		h.walk(node.Else, loops)
		return
	}
	// Generic descent for everything not handled structurally above.
	for _, child := range childNodes(n) {
		h.walk(child, loops)
	}
}

// capturedLoopVar returns the name of a loop variable referenced by the
// literal, or "".
func (h *hotWalker) capturedLoopVar(lit *ast.FuncLit, loops []*loopFrame) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := h.info.Uses[id]
		if obj == nil {
			return true
		}
		for _, frame := range loops {
			if frame.vars[obj] {
				captured = id.Name
				return false
			}
		}
		return true
	})
	return captured
}

// capturedOuterVar returns the name of a variable of the enclosing
// function (parameter or local, not a field or package-level var) that
// the literal captures, or "". Capture-free literals compile to static
// closures and never allocate, so they stay legal.
func (h *hotWalker) capturedOuterVar(lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := h.info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing declaration but
		// outside the literal itself.
		if obj.Pos() >= h.fd.Pos() && obj.Pos() < h.fd.End() && (obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			captured = id.Name
			return false
		}
		return true
	})
	return captured
}

func (h *hotWalker) checkCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch h.builtinName(fun) {
		case "make":
			h.checkMake(call)
		case "append":
			h.checkAppend(call)
		case "new":
			h.pass.Reportf(call.Pos(), "new(...) in hot path: allocates; reuse arena storage")
		}
	case *ast.SelectorExpr:
		if obj := h.info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			h.pass.Reportf(call.Pos(), "fmt.%s in hot path: fmt always allocates; predeclare errors or move formatting off the hot path", fun.Sel.Name)
		}
	}
	h.checkBoxing(call)
}

// builtinName resolves an identifier to the builtin it names, or "".
func (h *hotWalker) builtinName(id *ast.Ident) string {
	if obj := h.info.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Builtin); ok {
			return obj.Name()
		}
	}
	return ""
}

// checkMake flags map makes always, and slice/channel makes unless the
// call is dominated by a cap(...) guard — the grow-on-demand idiom
// (if cap(buf) < n { buf = make(...) }) that amortizes to zero.
func (h *hotWalker) checkMake(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := h.info.Types[call.Args[0]]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		h.pass.Reportf(call.Pos(), "make(map) in hot path: maps allocate on growth; use a slice-indexed table")
	case *types.Slice, *types.Chan:
		if !h.underCapGuard(call) {
			h.pass.Reportf(call.Pos(), "make in hot path outside a cap(...) growth guard: allocates every call; use the grow-on-demand arena idiom")
		}
	}
}

// underCapGuard reports whether node sits inside an if statement of this
// function whose condition mentions cap(...).
func (h *hotWalker) underCapGuard(node ast.Node) bool {
	guarded := false
	var walk func(n ast.Node, inGuard bool)
	walk = func(n ast.Node, inGuard bool) {
		if n == nil || guarded {
			return
		}
		if n == ast.Node(node) {
			guarded = inGuard
			return
		}
		if ifs, ok := n.(*ast.IfStmt); ok {
			capGuard := inGuard || mentionsCap(ifs.Cond, h.info)
			walk(ifs.Init, inGuard)
			walk(ifs.Cond, inGuard)
			walk(ifs.Body, capGuard)
			walk(ifs.Else, capGuard)
			return
		}
		for _, child := range childNodes(n) {
			walk(child, inGuard)
		}
	}
	walk(h.fd.Body, false)
	return guarded
}

// mentionsCap reports whether the expression calls the builtin cap.
func mentionsCap(e ast.Expr, info *types.Info) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if obj, isB := info.Uses[id].(*types.Builtin); isB && obj.Name() == "cap" {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// checkAppend flags appends whose destination is a fresh local slice.
func (h *hotWalker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := call.Args[0]
	id, ok := dst.(*ast.Ident)
	if !ok {
		// Field selectors, index expressions: arena-backed, allowed.
		return
	}
	obj, ok := h.info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	if h.isParam(obj) {
		return
	}
	if origin, fresh := h.freshLocalOrigin(obj); fresh {
		h.pass.Reportf(call.Pos(), "append to fresh local %q (declared via %s) in hot path: grows a new backing every call; append into an arena slice or preallocate with explicit capacity", id.Name, origin)
	}
}

// isParam reports whether obj is a parameter (or named result) of the
// enclosing function or one of its literals.
func (h *hotWalker) isParam(obj *types.Var) bool {
	found := false
	ast.Inspect(h.fd, func(n ast.Node) bool {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			return !found
		}
		for _, fl := range []*ast.FieldList{ft.Params, ft.Results} {
			if fl == nil {
				continue
			}
			for _, field := range fl.List {
				for _, name := range field.Names {
					if h.info.Defs[name] == obj {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// freshLocalOrigin finds the defining statement of a local slice and
// classifies it: origins that provably allocate a fresh, capacity-less
// backing ("var x []T", "x := []T{...}", "x := make([]T, n)") report
// fresh=true. Origins derived from parameters, fields, other locals, or
// calls are treated as arena-backed and allowed — the analyzer stays
// conservative so annotated code never needs false-positive waivers.
func (h *hotWalker) freshLocalOrigin(obj *types.Var) (origin string, fresh bool) {
	ast.Inspect(h.fd, func(n ast.Node) bool {
		if fresh {
			return false
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || h.info.Defs[id] != obj {
					continue
				}
				if i >= len(node.Rhs) {
					continue
				}
				switch rhs := node.Rhs[i].(type) {
				case *ast.CompositeLit:
					origin, fresh = "slice literal", true
				case *ast.CallExpr:
					if fn, ok := rhs.Fun.(*ast.Ident); ok && h.builtinName(fn) == "make" && len(rhs.Args) < 3 {
						if _, isSlice := h.info.Types[rhs.Args[0]].Type.Underlying().(*types.Slice); isSlice {
							origin, fresh = "make without capacity", true
						}
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := node.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if h.info.Defs[name] != obj {
						continue
					}
					if len(vs.Values) == 0 {
						origin, fresh = "var with nil backing", true
					} else if i < len(vs.Values) {
						if _, isLit := vs.Values[i].(*ast.CompositeLit); isLit {
							origin, fresh = "slice literal", true
						}
					}
				}
			}
		}
		return !fresh
	})
	return origin, fresh
}

// checkBoxing flags implicit interface conversions of concrete
// non-pointer values in call arguments.
func (h *hotWalker) checkBoxing(call *ast.CallExpr) {
	sig := h.callSignature(call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // x... passes the slice through, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		h.checkConvert(arg, paramType, "argument")
	}
}

// callSignature resolves a call's static signature, nil for builtins,
// conversions, and type expressions.
func (h *hotWalker) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := h.info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkAssign flags boxing in assignments to interface-typed
// destinations.
func (h *hotWalker) checkAssign(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		tv, ok := h.info.Types[lhs]
		if !ok {
			continue
		}
		h.checkConvert(assign.Rhs[i], tv.Type, "assignment")
	}
}

// checkReturn flags boxing in return statements.
func (h *hotWalker) checkReturn(ret *ast.ReturnStmt) {
	sig := h.fdSignature()
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		h.checkConvert(res, sig.Results().At(i).Type(), "return value")
	}
}

func (h *hotWalker) fdSignature() *types.Signature {
	obj := h.info.Defs[h.fd.Name]
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// checkConvert reports a finding when expr's concrete non-pointer value
// is implicitly converted to an interface destination — the boxing
// allocation the PR 3/4 hot paths eliminated (their idiom: pass a
// pointer to a session-embedded struct, which converts for free).
func (h *hotWalker) checkConvert(expr ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := h.info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src.Underlying()) {
		return // interface-to-interface carries the existing box
	}
	if tv.IsNil() {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return // pointer-shaped: the iface data word holds it without heap allocation
	}
	h.pass.Reportf(expr.Pos(), "interface conversion boxes %s (%s) in hot path: allocates; pass a pointer to reused storage instead",
		types.TypeString(src, types.RelativeTo(h.pass.Pkg.Types)), what)
}

// childNodes enumerates a node's direct children via ast.Inspect.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			out = append(out, child)
		}
		return false
	})
	return out
}
