package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive comments recognized in source. Each must be the start of its
// own //-comment line (no space after //, like go:build).
const (
	// DirectiveHotpath marks a function as a steady-state hot path whose
	// body hotalloc keeps allocation-free.
	DirectiveHotpath = "ecsort:hotpath"
	// DirectiveOwnedByShard marks a struct field as owned by its shard's
	// single-writer goroutine; shardown rejects access from anywhere
	// else.
	DirectiveOwnedByShard = "ecsort:owned-by-shard"
	// DirectiveShardGoroutine marks a function as running on the owning
	// shard goroutine (the writer loop and its helpers).
	DirectiveShardGoroutine = "ecsort:shard-goroutine"
	// DirectiveShardDispatch marks a function whose function-literal
	// arguments execute on the owning shard goroutine (Service.do).
	DirectiveShardDispatch = "ecsort:shard-dispatch"
	// DirectiveIgnore suppresses one analyzer's findings on its line and
	// the next: //ecsort:ignore <analyzer> <reason>. The reason is
	// mandatory.
	DirectiveIgnore = "ecsort:ignore"
)

// Finding is one analyzer report: a position, the analyzer that fired,
// and a human-readable message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the file:line:col tool convention.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one project-invariant check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-line description for the CLI listing.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// All is the full analyzer suite, in reporting order.
var All = []*Analyzer{
	OracleRound,
	HotAlloc,
	ShardOwn,
	CtxFlow,
	APIDoc,
	RegistryComplete,
}

// ByName returns the analyzers matching the comma-separated list, or All
// for "".
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Pass is one (analyzer, package) run.
type Pass struct {
	Module   *Module
	Pkg      *Package
	analyzer *Analyzer
	vet      *vetState
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.vet.report(p.analyzer.Name, p.Module.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// HotpathFuncs returns the functions of the package annotated
// //ecsort:hotpath, keyed by declaration.
func (p *Pass) HotpathFuncs() map[*ast.FuncDecl]bool { return p.vet.facts(p.Pkg).hotpath }

// ignoreKey locates one suppressed (line, analyzer) pair.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// fileFacts is the per-package directive index shared by all analyzers.
type fileFacts struct {
	hotpath   map[*ast.FuncDecl]bool
	shardGo   map[*ast.FuncDecl]bool
	dispatch  map[types.Object]bool // Defs object of //ecsort:shard-dispatch funcs
	ownedVars map[*types.Var]bool   // fields marked //ecsort:owned-by-shard
}

// vetState accumulates findings and caches per-package facts for one Vet
// run.
type vetState struct {
	module   *Module
	findings []Finding
	ignores  map[ignoreKey]bool
	factsBy  map[*Package]*fileFacts
}

func (v *vetState) report(analyzer string, pos token.Position, msg string) {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if v.ignores[ignoreKey{file: pos.Filename, line: line, analyzer: analyzer}] {
			return
		}
	}
	v.findings = append(v.findings, Finding{Analyzer: analyzer, Pos: pos, Message: msg})
}

// directive extracts the ecsort directive in a comment line, if any:
// "//ecsort:hotpath" → "ecsort:hotpath", rest of line. Directives must
// start the comment with no space, mirroring go:build.
func directive(c *ast.Comment) (name, rest string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//ecsort:") {
		return "", "", false
	}
	text = strings.TrimPrefix(text, "//")
	name, rest, _ = strings.Cut(text, " ")
	return name, strings.TrimSpace(rest), true
}

// groupHas reports whether a comment group carries the given directive.
func groupHas(g *ast.CommentGroup, want string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if name, _, ok := directive(c); ok && name == want {
			return true
		}
	}
	return false
}

// facts indexes pkg's directives on first use: annotated functions and
// fields, plus ignore lines (registered globally so suppression applies
// to every analyzer's findings in this package).
func (v *vetState) facts(pkg *Package) *fileFacts {
	if f, ok := v.factsBy[pkg]; ok {
		return f
	}
	f := &fileFacts{
		hotpath:   make(map[*ast.FuncDecl]bool),
		shardGo:   make(map[*ast.FuncDecl]bool),
		dispatch:  make(map[types.Object]bool),
		ownedVars: make(map[*types.Var]bool),
	}
	fset := v.module.Fset
	for _, file := range pkg.Files {
		// Ignore directives may sit on any comment line, including
		// trailing comments, so scan every group.
		for _, g := range file.Comments {
			for _, c := range g.List {
				name, rest, ok := directive(c)
				if !ok || name != DirectiveIgnore {
					continue
				}
				pos := fset.Position(c.Pos())
				analyzer, reason, _ := strings.Cut(rest, " ")
				if analyzer == "" || strings.TrimSpace(reason) == "" {
					v.report("ignore", pos, "malformed //ecsort:ignore: want \"//ecsort:ignore <analyzer> <reason>\"")
					continue
				}
				v.ignores[ignoreKey{file: pos.Filename, line: pos.Line, analyzer: analyzer}] = true
			}
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if groupHas(d.Doc, DirectiveHotpath) {
					f.hotpath[d] = true
				}
				if groupHas(d.Doc, DirectiveShardGoroutine) {
					f.shardGo[d] = true
				}
				if groupHas(d.Doc, DirectiveShardDispatch) {
					if obj := pkg.Info.Defs[d.Name]; obj != nil {
						f.dispatch[obj] = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !groupHas(field.Doc, DirectiveOwnedByShard) && !groupHas(field.Comment, DirectiveOwnedByShard) {
							continue
						}
						for _, name := range field.Names {
							if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
								f.ownedVars[obj] = true
							}
						}
					}
				}
			}
		}
	}
	v.factsBy[pkg] = f
	return f
}

// Vet loads the module rooted at dir and runs the given analyzers (all
// of them when none are named) over every package, returning the
// surviving findings sorted by position. A non-nil error means the
// module itself failed to load or type-check, not that findings exist.
func Vet(dir string, analyzers ...*Analyzer) ([]Finding, error) {
	m, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	return VetModule(m, analyzers...)
}

// VetModule runs analyzers over an already loaded module (including any
// LoadExtra fixture packages).
func VetModule(m *Module, analyzers ...*Analyzer) ([]Finding, error) {
	if len(analyzers) == 0 {
		analyzers = All
	}
	v := &vetState{
		module:  m,
		ignores: make(map[ignoreKey]bool),
		factsBy: make(map[*Package]*fileFacts),
	}
	pkgs := m.Packages()
	// Index directives (and ignore lines) for every package before any
	// analyzer runs, so a suppression is honored no matter which package
	// the reporting analyzer was visiting.
	for _, pkg := range pkgs {
		v.facts(pkg)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Module: m, Pkg: pkg, analyzer: a, vet: v}
			a.Run(pass)
		}
	}
	sort.Slice(v.findings, func(i, j int) bool {
		a, b := v.findings[i], v.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return v.findings, nil
}

// funcScope walks every function body of a file, handing the visitor the
// enclosing declaration. Function literals are visited within their
// enclosing declaration's walk.
func funcScope(file *ast.File, visit func(decl *ast.FuncDecl)) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd)
		}
	}
}

// recvNamed resolves a method declaration's receiver to its named base
// type, or nil for plain functions.
func recvNamed(pkg *Package, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedBase(tv.Type)
}

// namedBase unwraps pointers (and generic instances) down to the named
// type, or nil.
func namedBase(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}
