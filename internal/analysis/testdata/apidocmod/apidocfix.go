// Package apidocfix seeds violations for the apidoc analyzer: committed
// surface symbols with and without doc comments, and a v1-style wrapper
// missing its Deprecated marker.
package apidocfix

// Version is documented.
const Version = 1

// Documented carries a doc comment, as every surface symbol must.
func Documented() int { return 0 }

func Undocumented() int { return 1 } // want apidoc

// SortOld reads like a v1 wrapper but lacks the Deprecated marker.
func SortOld(xs []int) []int { return xs } // want apidoc

// Thing is documented.
type Thing struct{ Field int }

// Get is a documented surface method.
func (t Thing) Get() int { return t.Field }
