module apidocfix

go 1.24
