package registrycomplete

// registry is the name→factory table; Orphan is deliberately missing.
var registry = map[string]func() Algorithm{
	"wired": Wired,
}

// byName resolves a factory.
func byName(name string) (func() Algorithm, bool) {
	f, ok := registry[name]
	return f, ok
}
