// Package registrycomplete seeds violations for the registrycomplete
// analyzer: an Algorithm constructor wired into registry.go and one
// orphaned.
package registrycomplete

// Algorithm is the local regimen interface.
type Algorithm interface {
	Name() string
}

type alg struct{ name string }

func (a alg) Name() string { return a.name }

// Wired is referenced by the registry.
func Wired() Algorithm { return alg{name: "wired"} }

// Orphan never made it into the registry.
func Orphan() Algorithm { return alg{name: "orphan"} } // want registrycomplete

// helper is unexported, so the registry owes it nothing.
func helper() Algorithm { return alg{name: "helper"} }
