// Package oracleround seeds violations for the oracleround analyzer:
// direct Oracle.Same calls outside the round machinery, the legal
// wrapper-delegation pattern, and a coincidental Same method that must
// never match.
package oracleround

import "ecsort/internal/model"

// direct calls Same on the interface outside any round.
func direct(o model.Oracle) bool {
	return o.Same(0, 1) // want oracleround
}

// labelOracle is a concrete oracle implementation.
type labelOracle struct{ labels []int }

func (l *labelOracle) N() int             { return len(l.labels) }
func (l *labelOracle) Same(i, j int) bool { return l.labels[i] == l.labels[j] }

// concrete calls Same on a concrete implementation.
func concrete(l *labelOracle) bool {
	return l.Same(2, 3) // want oracleround
}

// wrapper implements model.Oracle itself, so its methods may delegate to
// the inner oracle — the recorder/adversary pattern.
type wrapper struct{ inner model.Oracle }

func (w *wrapper) N() int             { return w.inner.N() }
func (w *wrapper) Same(i, j int) bool { return w.inner.Same(i, j) }

// set has a Same method with an unrelated signature; calling it is fine.
type set struct{}

func (set) Same(other set) bool { return true }

func unrelated(s set) bool { return s.Same(set{}) }

// batcher is a concrete batch-capable oracle implementation.
type batcher struct{ labels []int }

func (b *batcher) N() int             { return len(b.labels) }
func (b *batcher) Same(i, j int) bool { return b.labels[i] == b.labels[j] }
func (b *batcher) SameBatch(pairs []model.Pair, out []bool) {
	for i, p := range pairs {
		out[i] = b.labels[p.A] == b.labels[p.B]
	}
}

// directBatch calls SameBatch outside any round — the batch twin of the
// direct Same violation.
func directBatch(o model.BatchOracle, pairs []model.Pair, out []bool) {
	o.SameBatch(pairs, out) // want oracleround
}

// concreteBatch calls SameBatch on a concrete implementation.
func concreteBatch(b *batcher, pairs []model.Pair, out []bool) {
	b.SameBatch(pairs, out) // want oracleround
}

// batchWrapper implements model.BatchOracle itself, so its methods may
// delegate whole chunks to the inner oracle — the counting-decorator
// pattern.
type batchWrapper struct{ inner model.BatchOracle }

func (w *batchWrapper) N() int             { return w.inner.N() }
func (w *batchWrapper) Same(i, j int) bool { return w.inner.Same(i, j) }
func (w *batchWrapper) SameBatch(pairs []model.Pair, out []bool) {
	w.inner.SameBatch(pairs, out)
}

// chunkSet has a SameBatch method with an unrelated signature; calling
// it is fine even though chunkSet coincidentally implements Oracle.
type chunkSet struct{}

func (chunkSet) N() int                          { return 0 }
func (chunkSet) Same(i, j int) bool              { return false }
func (chunkSet) SameBatch(a, b []int) (int, int) { return 0, 0 }

func unrelatedBatch(c chunkSet) (int, int) { return c.SameBatch(nil, nil) }
