// Package oracleround seeds violations for the oracleround analyzer:
// direct Oracle.Same calls outside the round machinery, the legal
// wrapper-delegation pattern, and a coincidental Same method that must
// never match.
package oracleround

import "ecsort/internal/model"

// direct calls Same on the interface outside any round.
func direct(o model.Oracle) bool {
	return o.Same(0, 1) // want oracleround
}

// labelOracle is a concrete oracle implementation.
type labelOracle struct{ labels []int }

func (l *labelOracle) N() int             { return len(l.labels) }
func (l *labelOracle) Same(i, j int) bool { return l.labels[i] == l.labels[j] }

// concrete calls Same on a concrete implementation.
func concrete(l *labelOracle) bool {
	return l.Same(2, 3) // want oracleround
}

// wrapper implements model.Oracle itself, so its methods may delegate to
// the inner oracle — the recorder/adversary pattern.
type wrapper struct{ inner model.Oracle }

func (w *wrapper) N() int             { return w.inner.N() }
func (w *wrapper) Same(i, j int) bool { return w.inner.Same(i, j) }

// set has a Same method with an unrelated signature; calling it is fine.
type set struct{}

func (set) Same(other set) bool { return true }

func unrelated(s set) bool { return s.Same(set{}) }
