// Package ctxflow seeds violations for the ctxflow analyzer: detached
// context roots, an entry point without a context, plus the deprecated
// and ignore-suppressed escapes.
package ctxflow

import "context"

// detach re-roots the context tree in library code.
func detach() context.Context {
	return context.Background() // want ctxflow
}

// todo is just as detached.
func todo() context.Context {
	return context.TODO() // want ctxflow
}

// SortValues is an entry point that cannot be cancelled.
func SortValues(xs []int) []int { // want ctxflow
	return xs
}

// SortSorted threads the caller's context, so it is legal.
func SortSorted(ctx context.Context, xs []int) []int {
	_ = ctx
	return xs
}

// SortLegacy keeps its historic shape.
//
// Deprecated: use SortSorted.
func SortLegacy(xs []int) []int {
	ctx := context.Background()
	_ = ctx
	return xs
}

// root is a deliberate lifetime root, suppressed with a reason.
func root() context.Context {
	//ecsort:ignore ctxflow fixture lifetime root for the suppression test
	return context.Background()
}

// malformed carries an ignore directive without the mandatory reason:
// the directive itself becomes a finding and suppresses nothing.
func malformed() context.Context {
	//ecsort:ignore ctxflow
	return context.Background() // want ctxflow
}
