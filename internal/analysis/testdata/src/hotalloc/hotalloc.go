// Package hotalloc seeds violations for the hotalloc analyzer: each
// forbidden allocation pattern inside an annotated function, next to the
// legal arena idioms that must stay silent.
package hotalloc

import "fmt"

type arena struct {
	buf []int
}

// grow is the legal grow-on-demand idiom: make under a cap guard, and
// appends into field-backed storage.
//
//ecsort:hotpath
func (a *arena) grow(n int) []int {
	if cap(a.buf) < n {
		a.buf = make([]int, 0, n)
	}
	a.buf = append(a.buf[:0], n)
	return a.buf
}

// bad seeds one of each forbidden pattern.
//
//ecsort:hotpath
func bad(n int) string {
	m := map[int]int{} // want hotalloc
	m[n] = n
	s := make([]int, n) // want hotalloc
	s[0] = n
	var fresh []int
	fresh = append(fresh, n) // want hotalloc
	p := new(int)            // want hotalloc
	*p = fresh[0]
	// Two findings: the fmt call, and *p boxing into its ...any parameter.
	return fmt.Sprintf("%d", *p) // want hotalloc hotalloc
}

// closures seeds the per-iteration closure allocation.
//
//ecsort:hotpath
func closures() int {
	total := 0
	for i := 0; i < 3; i++ {
		f := func() int { return i } // want hotalloc
		total += f()
	}
	return total
}

// boxing seeds the implicit interface conversion of a concrete value.
//
//ecsort:hotpath
func boxing(v int) any {
	return v // want hotalloc
}

// cold is unannotated, so the same patterns stay legal here.
func cold(n int) string {
	return fmt.Sprintf("%d", n)
}
