// Package shardown seeds violations for the shardown analyzer: owned
// fields touched off the writer goroutine, construction outside it, and
// non-atomic use of sync/atomic fields — next to every legal access
// shape.
package shardown

import "sync/atomic"

type coll struct {
	state []int //ecsort:owned-by-shard

	hits atomic.Int64
}

type engine struct {
	cols []*coll
}

// dispatch runs fn on the owner goroutine.
//
//ecsort:shard-dispatch
func (e *engine) dispatch(fn func()) { fn() }

// loop is the owner goroutine: owned access is legal here.
//
//ecsort:shard-goroutine
func (e *engine) loop() {
	for _, c := range e.cols {
		c.state = append(c.state, 1)
	}
}

// reset is a method of the declaring struct: legal.
func (c *coll) reset() { c.state = c.state[:0] }

// offGoroutine touches owned state from a plain function.
func offGoroutine(c *coll) {
	c.state = nil // want shardown
}

// construct initializes owned state outside the owner goroutine.
func construct() *coll {
	return &coll{state: []int{1}} // want shardown
}

// viaDispatch is legal: the literal executes on the owner goroutine.
func viaDispatch(e *engine, c *coll) {
	e.dispatch(func() { c.state = nil })
}

// atomicOK uses the atomic field through methods only.
func atomicOK(c *coll) int64 {
	c.hits.Add(1)
	return c.hits.Load()
}

// atomicCopy copies the atomic field, forking the counter.
func atomicCopy(c *coll) int64 {
	h := c.hits // want shardown
	return h.Load()
}
