// Benchmarks regenerating the paper's quantitative artifacts, one per
// table/figure (see DESIGN.md's experiment index). Besides wall time, each
// benchmark reports the model-level quantities the paper plots —
// comparisons/op and rounds/op — via b.ReportMetric, so `go test -bench=.`
// doubles as a compact reproduction of the evaluation:
//
//   - BenchmarkFig5* — Figure 5: round-robin comparison counts per
//     distribution (uniform / geometric / Poisson / zeta parameter grid).
//   - BenchmarkCRRounds / BenchmarkERRounds / BenchmarkConstRounds —
//     Theorems 1, 2, 4 round complexities across n.
//   - BenchmarkAdversaryEqual / BenchmarkAdversarySmallest — Theorems 5,
//     6 forced-comparison lower bounds (note C·f/n² stays ≈ constant).
//   - BenchmarkFigure1Schedule — the Figure 1 merge-schedule generator.
//   - BenchmarkOracle* — cost of one comparison under each application
//     oracle (handshake protocol run, isomorphism test, fault probe).
//
// Benchmark sizes are scaled down from the paper's (which sum to ~10⁹
// element-draws) to keep -bench runs in seconds; cmd/ecs-experiments
// -scale 1 reproduces the full-size tables.
package ecsort

import (
	"fmt"
	"math/rand"
	"testing"

	"ecsort/internal/harness"
)

// benchFig5 runs one Figure 5 cell: round-robin sorting of n elements
// drawn from d, reporting the comparison count the paper plots.
func benchFig5(b *testing.B, d Distribution, n int) {
	b.Helper()
	rng := rand.New(rand.NewSource(2016))
	var comparisons int64
	for i := 0; i < b.N; i++ {
		labels := SampleLabels(d, n, rng)
		res, err := SortRoundRobin(NewLabelOracle(labels), Config{})
		if err != nil {
			b.Fatal(err)
		}
		comparisons += res.Stats.Comparisons
	}
	b.ReportMetric(float64(comparisons)/float64(b.N), "comparisons/op")
	b.ReportMetric(float64(comparisons)/float64(b.N)/float64(n), "comparisons/elem")
}

func BenchmarkFig5Uniform(b *testing.B) {
	for _, k := range []int{10, 25, 100} {
		b.Run(fmt.Sprintf("k=%d/n=20000", k), func(b *testing.B) {
			benchFig5(b, NewUniform(k), 20000)
		})
	}
}

func BenchmarkFig5Geometric(b *testing.B) {
	for _, p := range []float64{1.0 / 2, 1.0 / 10, 1.0 / 50} {
		b.Run(fmt.Sprintf("p=%g/n=20000", p), func(b *testing.B) {
			benchFig5(b, NewGeometric(p), 20000)
		})
	}
}

func BenchmarkFig5Poisson(b *testing.B) {
	for _, lambda := range []float64{1, 5, 25} {
		b.Run(fmt.Sprintf("lambda=%g/n=20000", lambda), func(b *testing.B) {
			benchFig5(b, NewPoisson(lambda), 20000)
		})
	}
}

func BenchmarkFig5Zeta(b *testing.B) {
	for _, s := range []float64{1.1, 1.5, 2, 2.5} {
		b.Run(fmt.Sprintf("s=%g/n=2000", s), func(b *testing.B) {
			benchFig5(b, NewZeta(s), 2000)
		})
	}
}

// BenchmarkCRRounds regenerates the Theorem 1 validation: rounds should
// stay flat as n grows 16×.
func BenchmarkCRRounds(b *testing.B) {
	const k = 8
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			labels := SampleLabels(NewUniform(k), n, rng)
			o := NewLabelOracle(labels)
			var rounds, comparisons int64
			for i := 0; i < b.N; i++ {
				res, err := SortCR(o, k, Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Stats.Rounds)
				comparisons += res.Stats.Comparisons
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(comparisons)/float64(b.N), "comparisons/op")
		})
	}
}

// BenchmarkERRounds regenerates the Theorem 2 validation: rounds grow
// ∝ k·log n.
func BenchmarkERRounds(b *testing.B) {
	const k = 8
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			labels := SampleLabels(NewUniform(k), n, rng)
			o := NewLabelOracle(labels)
			var rounds, comparisons int64
			for i := 0; i < b.N; i++ {
				res, err := SortER(o, Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Stats.Rounds)
				comparisons += res.Stats.Comparisons
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(comparisons)/float64(b.N), "comparisons/op")
		})
	}
}

// BenchmarkConstRounds regenerates the Theorem 4 validation: rounds flat
// in n for fixed λ.
func BenchmarkConstRounds(b *testing.B) {
	const lambda = 0.3
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("lambda=%g/n=%d", lambda, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			labels := SampleLabels(NewUniform(3), n, rng)
			o := NewLabelOracle(labels)
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := SortConstRoundER(o, ConstRoundOptions{
					Lambda: lambda, D: 8, MaxRetries: 8, Seed: int64(i),
				}, Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Stats.Rounds)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkAdversaryEqual regenerates the Theorem 5 sweep: forced
// comparisons normalized by n²/f should hover near a constant ≥ 1/64.
func BenchmarkAdversaryEqual(b *testing.B) {
	const n = 512
	for _, f := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("n=%d/f=%d", n, f), func(b *testing.B) {
			var normalized float64
			for i := 0; i < b.N; i++ {
				adv := NewEqualSizeAdversary(n, f)
				res, err := SortRoundRobin(adv, Config{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				normalized += float64(res.Stats.Comparisons) * float64(f) / float64(n) / float64(n)
			}
			b.ReportMetric(normalized/float64(b.N), "C·f/n²")
		})
	}
}

// BenchmarkAdversarySmallest regenerates the Theorem 6 sweep: comparisons
// until the smallest class is pinned, normalized by n²/ℓ.
func BenchmarkAdversarySmallest(b *testing.B) {
	const n = 512
	for _, l := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d/l=%d", n, l), func(b *testing.B) {
			var normalized float64
			for i := 0; i < b.N; i++ {
				adv := NewSmallestClassAdversary(n, l)
				if _, err := SortRoundRobin(adv, Config{Workers: 1}); err != nil {
					b.Fatal(err)
				}
				normalized += float64(adv.FirstSCCMark()) * float64(l) / float64(n) / float64(n)
			}
			b.ReportMetric(normalized/float64(b.N), "C·ℓ/n²")
		})
	}
}

// BenchmarkFigure1Schedule measures the Figure 1 table generator.
func BenchmarkFigure1Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Figure1Schedule(1<<20, 8)
		if len(rows) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkOracleHandshake measures one full HMAC challenge–response
// handshake between two agent goroutines.
func BenchmarkOracleHandshake(b *testing.B) {
	labels := []int{0, 0, 1, 1}
	h := NewHandshakeOracle(labels, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Same(0, i%2+2) // alternate match / mismatch
	}
}

// BenchmarkOracleGraphIso measures one isomorphism test on 12-vertex
// graphs (positive and negative cases).
func BenchmarkOracleGraphIso(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	o := RandomGraphCollection([]int{0, 0, 1}, 12, rng)
	b.Run("isomorphic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !o.Same(0, 1) {
				b.Fatal("wrong answer")
			}
		}
	})
	b.Run("non-isomorphic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if o.Same(0, 2) {
				b.Fatal("wrong answer")
			}
		}
	})
}

// BenchmarkOracleFault measures one mutual probe.
func BenchmarkOracleFault(b *testing.B) {
	f := RandomInfections(1024, 4, 0.4, rand.New(rand.NewSource(11)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Same(i%1024, (i+7)%1024)
	}
}

// BenchmarkTwoClassER measures the k=2 constant-round algorithm (the
// open-problem note of Section 6) at growing n.
func BenchmarkTwoClassER(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			labels := make([]int, n)
			for i := 0; i < n/10; i++ {
				labels[i*7%n] = 1
			}
			o := NewLabelOracle(labels)
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := SortTwoClassER(o, 5, int64(i), Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Stats.Rounds)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkMajority measures MJRTY + verification (≤ 2(n−1) tests).
func BenchmarkMajority(b *testing.B) {
	const n = 1 << 14
	labels := make([]int, n)
	for i := 0; i < n/3; i++ {
		labels[i*3%n] = 1
	}
	o := NewLabelOracle(labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, maj := Majority(o, Config{}); !maj {
			b.Fatal("majority missing")
		}
	}
}

// BenchmarkRoundRobinScaling measures the sequential regimen end to end
// at growing n (the engine behind every Figure 5 cell).
func BenchmarkRoundRobinScaling(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(12))
			labels := SampleLabels(NewUniform(25), n, rng)
			o := NewLabelOracle(labels)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SortRoundRobin(o, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
