package ecsort

// The v2 API: equivalence class sorting regimens as first-class,
// composable Algorithm values. Where v1 exposed one SortXxx free
// function per regimen (each hard-coding its dispatch at the call
// site), v2 exposes values that carry their name and comparison-model
// mode, sort through a context (cancellation is checked between
// physical rounds), dispatch by name through a registry, and can be
// planned automatically from workload hints (Auto). The v1 functions
// remain as thin deprecated wrappers over this path.

import (
	"context"

	"ecsort/internal/algo"
)

// Algorithm is one sorting regimen as a value: it knows its registry
// name, the Mode its session must be in, and how to run itself on a
// Session. Sort installs ctx on the session so cancellation is checked
// between physical rounds — a cancelled sort returns ctx.Err() promptly
// and the runtime pool drains cleanly. Algorithm values are stateless
// and safe to reuse across sorts and goroutines. The regimen that
// produced a Result is recorded in Result.Algorithm.
type Algorithm = algo.Algorithm

// Sort runs alg on a fresh session over o — the one-call v2 entry
// point:
//
//	res, err := ecsort.Sort(ctx, oracle, ecsort.CR(8), ecsort.Config{})
//
// For typed inputs without a hand-rolled oracle, see Classify.
func Sort(ctx context.Context, o Oracle, alg Algorithm, cfg Config) (Result, error) {
	return algo.Run(ctx, o, alg, cfg.options()...)
}

// CR returns the Theorem 1 regimen: O(k + log log n) rounds in the
// concurrent-read model via two-phase compounding. k must be the class
// count or an upper bound (correct for any k ≥ 1; k only steers the
// round schedule).
func CR(k int) Algorithm { return algo.CR(k) }

// CRUnknownK returns the Theorem 1 regimen with no prior knowledge of
// k, adapting the compounding schedule to the observed class count.
func CRUnknownK() Algorithm { return algo.CRUnknownK() }

// ER returns the Theorem 2 regimen: O(k log n) rounds in the
// exclusive-read model, no knowledge of k required.
func ER() Algorithm { return algo.ER() }

// ConstRoundER returns the Theorem 4 regimen: O(1) rounds in the
// exclusive-read model when every class has at least opt.Lambda·n
// elements.
func ConstRoundER(opt ConstRoundOptions) Algorithm {
	return algo.ConstRoundER(algo.ConstRoundOpts(opt))
}

// ConstRoundERAdaptive returns the Theorem 4 regimen without knowing λ:
// it starts at opt.Lambda (default 0.4) and halves after every failure,
// per the paper's remark. Use SortConstRoundERAdaptive when the
// successful λ itself is needed.
func ConstRoundERAdaptive(opt ConstRoundOptions) Algorithm {
	return algo.ConstRoundERAdaptive(algo.ConstRoundOpts(opt))
}

// TwoClassER returns the k = 2 constant-round regimen from the paper's
// conclusion: O(1) ER rounds for inputs promised to have at most two
// classes. If the promise might be false, Certify the result.
func TwoClassER(maxRetries int, seed int64) Algorithm {
	return algo.TwoClassER(maxRetries, seed)
}

// RoundRobin returns the sequential regimen of Jayapaul et al. — the
// Section 4 analysis subject; one comparison per round.
func RoundRobin() Algorithm { return algo.RoundRobin() }

// Naive returns the sequential one-representative-per-class baseline
// (≤ n·k comparisons).
func Naive() Algorithm { return algo.Naive() }

// ModeHint constrains which comparison-model variant Auto may plan.
type ModeHint = algo.ModeHint

// ModeHint values.
const (
	// AnyMode lets the planner use either model variant.
	AnyMode = algo.AnyMode
	// RequireER restricts the plan to exclusive-read regimens.
	RequireER = algo.RequireER
	// RequireCR restricts the plan to concurrent-read regimens.
	RequireCR = algo.RequireCR
)

// Hints describes what a caller knows about a workload: the class count
// K if known (K = 2 unlocks the two-class O(1) regimen), a smallest
// class fraction Lambda (unlocks the Theorem 4 O(1) regimen), a Mode
// constraint, and whether elements arrive Online. The zero value means
// "nothing is known".
type Hints = algo.Hints

// Auto returns the planner as an Algorithm: it picks the cheapest
// applicable regimen for the hinted workload — ordering candidates by
// round complexity, O(1) two-class/const-round before O(k + log log n)
// compounding CR before O(k log n) ER — and delegates to it, recording
// the regimen actually run in Result.Algorithm:
//
//	res, _ := ecsort.Sort(ctx, o, ecsort.Auto(ecsort.Hints{Lambda: 0.2}), cfg)
//	// res.Algorithm == "const-round-er"
func Auto(h Hints) Algorithm { return algo.Auto(h) }

// AlgorithmInfo describes one registry entry: name, comparison-model
// mode, the hints its factory consumes (required ones called out), the
// regimen's round complexity, and a one-line description. The service
// serves the same rows as GET /v1/algorithms.
type AlgorithmInfo = algo.Info

// Algorithms lists every registered regimen, cheapest-round families
// first.
func Algorithms() []AlgorithmInfo { return algo.Infos() }

// AlgorithmByName builds the named regimen from the registry — the
// single dispatch point the CLIs and the classification service share.
// Canonical names are those in Algorithms(); the short CLI aliases
// ("const", "rr", ...) also resolve. Regimens with required hints ("cr"
// needs K, "const-round-er" needs Lambda) fail loudly when the hint is
// missing.
func AlgorithmByName(name string, h Hints) (Algorithm, error) {
	return algo.ByName(name, h)
}
