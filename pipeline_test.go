package ecsort_test

// End-to-end pipeline tests through the public API: every algorithm ×
// every oracle kind, with certification as the final acceptance check —
// the way a downstream user would wire the library together.

import (
	"math/rand"
	"testing"

	"ecsort"
)

// oracleKind builds an oracle realizing a label vector.
type oracleKind struct {
	name  string
	build func(labels []int, seed int64, rng *rand.Rand) ecsort.Oracle
	maxN  int // some oracles are expensive per test
}

func oracleKinds() []oracleKind {
	return []oracleKind{
		{"label", func(labels []int, _ int64, _ *rand.Rand) ecsort.Oracle {
			return ecsort.NewLabelOracle(labels)
		}, 1 << 30},
		{"handshake", func(labels []int, seed int64, _ *rand.Rand) ecsort.Oracle {
			return ecsort.NewHandshakeOracle(labels, seed)
		}, 200},
		{"fault", func(labels []int, _ int64, _ *rand.Rand) ecsort.Oracle {
			states := make([]uint64, len(labels))
			for i, l := range labels {
				states[i] = uint64(l)*0x9e3779b97f4a7c15 + 1
			}
			return ecsort.NewFaultOracle(states)
		}, 1 << 30},
		{"graphiso", func(labels []int, _ int64, rng *rand.Rand) ecsort.Oracle {
			return ecsort.RandomGraphCollection(labels, 8, rng)
		}, 80},
		{"graphiso-cached", func(labels []int, _ int64, rng *rand.Rand) ecsort.Oracle {
			plain := ecsort.RandomGraphCollection(labels, 8, rng)
			graphs := make([]*ecsort.Graph, plain.N())
			for i := range graphs {
				graphs[i] = plain.Graph(i)
			}
			return ecsort.NewGraphIsoCachedOracle(graphs)
		}, 80},
		{"agents", func(labels []int, seed int64, _ *rand.Rand) ecsort.Oracle {
			return ecsort.NewAgentNetwork(ecsort.KeyAgents(labels, seed))
		}, 200},
	}
}

type algoKind struct {
	name string
	run  func(o ecsort.Oracle, k int) (ecsort.Result, error)
}

func algoKinds() []algoKind {
	return []algoKind{
		{"SortCR", func(o ecsort.Oracle, k int) (ecsort.Result, error) {
			return ecsort.SortCR(o, k, ecsort.Config{})
		}},
		{"SortCRUnknownK", func(o ecsort.Oracle, _ int) (ecsort.Result, error) {
			return ecsort.SortCRUnknownK(o, ecsort.Config{})
		}},
		{"SortER", func(o ecsort.Oracle, _ int) (ecsort.Result, error) {
			return ecsort.SortER(o, ecsort.Config{})
		}},
		{"SortRoundRobin", func(o ecsort.Oracle, _ int) (ecsort.Result, error) {
			return ecsort.SortRoundRobin(o, ecsort.Config{})
		}},
		{"SortNaive", func(o ecsort.Oracle, _ int) (ecsort.Result, error) {
			return ecsort.SortNaive(o, ecsort.Config{})
		}},
	}
}

func TestPipelineMatrix(t *testing.T) {
	for _, ok := range oracleKinds() {
		ok := ok
		t.Run(ok.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(777))
			n, k := 60, 4
			if n > ok.maxN {
				n = ok.maxN
			}
			labels := ecsort.SampleLabels(ecsort.NewUniform(k), n, rng)
			for _, ak := range algoKinds() {
				oracle := ok.build(labels, 42, rng)
				res, err := ak.run(oracle, k)
				if err != nil {
					t.Fatalf("%s: %v", ak.name, err)
				}
				if !ecsort.SameClassification(res.Labels(n), labels) {
					t.Fatalf("%s over %s: wrong classification", ak.name, ok.name)
				}
				// Acceptance: certify the result against a fresh session.
				if err := ecsort.Certify(oracle, res.Classes, ecsort.Config{}); err != nil {
					t.Fatalf("%s over %s: certificate rejected: %v", ak.name, ok.name, err)
				}
			}
		})
	}
}

// TestPipelineConstRound covers the randomized algorithm separately (it
// needs balanced classes).
func TestPipelineConstRound(t *testing.T) {
	rng := rand.New(rand.NewSource(778))
	n := 90
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 3
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	for _, ok := range oracleKinds() {
		if n > ok.maxN {
			continue
		}
		oracle := ok.build(labels, 43, rng)
		res, err := ecsort.SortConstRoundER(oracle, ecsort.ConstRoundOptions{
			Lambda: 0.2, D: 10, MaxRetries: 6, Seed: 11,
		}, ecsort.Config{})
		if err != nil {
			t.Fatalf("%s: %v", ok.name, err)
		}
		if !ecsort.SameClassification(res.Labels(n), labels) {
			t.Fatalf("%s: wrong classification", ok.name)
		}
	}
}

// TestPipelineIncremental streams elements through the public incremental
// sorter over each oracle kind.
func TestPipelineIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(779))
	n, k := 50, 3
	labels := ecsort.SampleLabels(ecsort.NewUniform(k), n, rng)
	for _, ok := range oracleKinds() {
		if n > ok.maxN {
			continue
		}
		oracle := ok.build(labels, 44, rng)
		inc, err := ecsort.NewIncremental(oracle, ecsort.Config{})
		if err != nil {
			t.Fatalf("%s: %v", ok.name, err)
		}
		for _, e := range rng.Perm(n) {
			if err := inc.Add(e); err != nil {
				t.Fatalf("%s: %v", ok.name, err)
			}
		}
		classes, err := inc.Classes()
		if err != nil {
			t.Fatalf("%s: %v", ok.name, err)
		}
		res := ecsort.Result{Classes: classes}
		if !ecsort.SameClassification(res.Labels(n), labels) {
			t.Fatalf("%s: incremental classification wrong", ok.name)
		}
	}
}

// TestPipelineStatsConsistency: comparisons ≥ rounds is impossible to
// violate for parallel algorithms (each round ≥ 1 comparison), and the
// widest round never exceeds the processor budget.
func TestPipelineStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(780))
	labels := ecsort.SampleLabels(ecsort.NewUniform(5), 128, rng)
	o := ecsort.NewLabelOracle(labels)
	for _, procs := range []int{0, 16, 64} {
		res, err := ecsort.SortER(o, ecsort.Config{Processors: procs})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Comparisons < int64(res.Stats.Rounds) {
			t.Fatalf("procs=%d: more rounds than comparisons: %+v", procs, res.Stats)
		}
		budget := procs
		if budget == 0 {
			budget = 128
		}
		if res.Stats.MaxRoundSize > budget {
			t.Fatalf("procs=%d: widest round %d exceeds budget", procs, res.Stats.MaxRoundSize)
		}
	}
}
