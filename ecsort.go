// Package ecsort implements parallel equivalence class sorting: grouping n
// elements into their equivalence classes when the only available
// operation is a pairwise equivalence test ("are these two in the same
// class?") and no total order exists.
//
// It is a faithful implementation of Devanny, Goodrich, and Jetviroj,
// "Parallel Equivalence Class Sorting: Algorithms, Lower Bounds, and
// Distribution-Based Analysis" (SPAA 2016), in Valiant's parallel
// comparison model:
//
//   - SortCR — O(k + log log n) rounds in the concurrent-read model
//     (Theorem 1), via the two-phase compounding-comparison technique.
//   - SortER — O(k log n) rounds in the exclusive-read model (Theorem 2).
//   - SortConstRoundER — O(1) rounds in the exclusive-read model when the
//     smallest class has at least λn elements (Theorem 4), built on
//     unions of random Hamiltonian cycles.
//   - SortRoundRobin — the sequential round-robin regimen of Jayapaul et
//     al., whose comparison count the distribution-based analysis of the
//     paper's Section 4 bounds.
//   - SortNaive — the obvious sequential baseline.
//
// Inputs are abstracted as an Oracle: anything that can answer Same(i, j)
// for elements 0..N()-1. The package ships oracles for the paper's three
// motivating applications — cryptographic secret handshakes, generalized
// fault (malware-state) diagnosis, and graph mining by isomorphism — plus
// a plain label oracle and the paper's Section 3 lower-bound adversaries,
// which are adaptive oracles that force any algorithm to spend Ω(n²/f)
// comparisons.
//
// The v2 API exposes the regimens as first-class Algorithm values (CR,
// ER, ConstRoundER, ...; see v2.go): Sort runs one through a
// context.Context with cancellation checked between parallel rounds,
// Auto plans the cheapest applicable regimen from workload Hints,
// Algorithms/AlgorithmByName expose the name registry, and Classify is
// a typed generic front end over any slice plus equivalence predicate.
// The SortXxx free functions below remain as thin deprecated wrappers.
//
// Costs are accounted in Valiant's model: only equivalence tests count,
// grouped into parallel rounds. Result.Stats reports total comparisons,
// rounds, and the widest round.
package ecsort

import (
	"context"
	"math/rand"

	"ecsort/internal/adversary"
	"ecsort/internal/agents"
	"ecsort/internal/core"
	"ecsort/internal/dist"
	"ecsort/internal/majority"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
	"ecsort/internal/runtime"
	"ecsort/internal/service"
)

// Oracle answers equivalence tests over elements 0..N()-1. Implementations
// must be safe for concurrent use; parallel rounds may issue tests from
// several goroutines.
type Oracle = model.Oracle

// BatchOracle is an optional Oracle capability: answer a whole chunk of
// equivalence tests in one call. Sessions detect it once at
// construction and then invoke the oracle once per worker-pool chunk
// instead of once per pair, with bit-identical stats, round logs, and
// partition fingerprints. Implement it on oracles whose answers carry
// per-call overhead (network round trips, protocol sessions,
// middleware cycles).
type BatchOracle = model.BatchOracle

// Mode selects the read-concurrency rule of the comparison model.
type Mode = model.Mode

// Comparison model variants. (v1 named these ER and CR; those names now
// belong to the Algorithm constructors, so the constants carry a Mode
// prefix.)
const (
	// ModeER (exclusive read): each element joins at most one comparison
	// per round — elements perform the tests themselves (secret
	// handshakes, fault probes).
	ModeER = model.ER
	// ModeCR (concurrent read): an element may join many comparisons per
	// round — elements are passive objects (graphs under isomorphism
	// tests).
	ModeCR = model.CR
)

// Pair is a single equivalence test between two elements.
type Pair = model.Pair

// Stats is the cost of a run in Valiant's model.
type Stats = model.Stats

// Result is a completed sort: the equivalence classes plus the cost that
// produced them.
type Result = core.Result

// Session executes comparison rounds against an oracle with full cost
// accounting; use it to build custom algorithms on the same substrate.
type Session = model.Session

// Runtime is a persistent worker pool executing parallel comparison
// rounds: a fixed set of long-lived goroutines that claim chunked index
// ranges of each round, write answers by index (so any Workers value is
// bit-identical to Workers(1)), and allocate nothing in steady state.
// One Runtime may be shared by any number of sessions — the
// classification service runs every collection on a single pool.
type Runtime = runtime.Pool

// RuntimeStats is a snapshot of a Runtime's counters: parallel width,
// jobs, chunks, and inline (serial) rounds.
type RuntimeStats = runtime.Stats

// NewRuntime starts a pool of the given parallel width (0 means
// GOMAXPROCS). Close it when no session uses it anymore.
func NewRuntime(workers int) *Runtime { return runtime.NewPool(workers) }

// DefaultRuntime returns the process-wide shared pool that sessions use
// when Config.Runtime is nil. It is created on first use and never
// closed.
func DefaultRuntime() *Runtime { return runtime.Shared() }

// Config tunes session execution. The zero value is ready to use.
type Config struct {
	// Processors caps comparisons per physical round (Valiant's p).
	// 0 means n, the paper's setting.
	Processors int
	// Workers is the parallel width of each round: the maximum number
	// of chunks a round is split into on the runtime pool. 0 means
	// GOMAXPROCS. Use 1 with order-sensitive oracles (adversaries).
	Workers int
	// Runtime is the worker pool rounds execute on. nil means the
	// process-wide shared pool (DefaultRuntime).
	Runtime *Runtime
}

func (c Config) options() []model.Option {
	var opts []model.Option
	if c.Processors > 0 {
		opts = append(opts, model.Processors(c.Processors))
	}
	if c.Workers != 0 {
		// Negative values flow through so model.Workers can reject them
		// loudly (ErrBadWorkers) instead of being silently dropped here.
		opts = append(opts, model.Workers(c.Workers))
	}
	if c.Runtime != nil {
		opts = append(opts, model.WithPool(c.Runtime))
	}
	return opts
}

// NewSession creates a cost-accounting session in the given mode.
func NewSession(o Oracle, mode Mode, cfg Config) *Session {
	return model.NewSession(o, mode, cfg.options()...)
}

// SortCR sorts in the concurrent-read model in O(k + log log n) parallel
// rounds with n processors (Theorem 1). k must be the number of classes
// or an upper bound; correctness holds for any k ≥ 1 (k only steers the
// round schedule).
//
// Deprecated: v1 entry point, kept as a thin wrapper. Use the Algorithm
// value CR(k) with Sort for cancellation support.
func SortCR(o Oracle, k int, cfg Config) (Result, error) {
	return Sort(context.Background(), o, CR(k), cfg)
}

// SortER sorts in the exclusive-read model in O(k log n) parallel rounds
// with n processors (Theorem 2). It needs no knowledge of k.
//
// Deprecated: v1 entry point, kept as a thin wrapper. Use the Algorithm
// value ER() with Sort for cancellation support.
func SortER(o Oracle, cfg Config) (Result, error) {
	return Sort(context.Background(), o, ER(), cfg)
}

// ConstRoundOptions configures SortConstRoundER.
type ConstRoundOptions struct {
	// Lambda is the guaranteed lower bound on (smallest class size)/n,
	// in (0, 0.4]. Required. If unknown, start at 0.4 and halve on
	// ErrConstRoundFailed, as the paper suggests.
	Lambda float64
	// D overrides the number of random Hamiltonian cycles; 0 selects
	// the theory constant d(λ), which is safe but pessimistic.
	D int
	// MaxRetries redraws the random graph after a failure.
	MaxRetries int
	// Seed drives the random cycles.
	Seed int64
}

// ErrConstRoundFailed is returned by SortConstRoundER when the randomized
// algorithm could not classify every element — in practice, when Lambda
// overestimates ℓ/n.
var ErrConstRoundFailed = core.ErrConstRoundFailed

// SortConstRoundER sorts in the exclusive-read model in O(1) parallel
// rounds with n processors, provided every class has at least
// Lambda·n elements (Theorem 4).
//
// Deprecated: v1 entry point, kept as a thin wrapper. Use the Algorithm
// value ConstRoundER(opt) with Sort for cancellation support.
func SortConstRoundER(o Oracle, opt ConstRoundOptions, cfg Config) (Result, error) {
	return Sort(context.Background(), o, ConstRoundER(opt), cfg)
}

// SortCRUnknownK sorts in the concurrent-read model with no prior
// knowledge of k, adapting the compounding schedule to the largest class
// count observed so far. Rounds match SortCR's asymptotics.
//
// Deprecated: v1 entry point, kept as a thin wrapper. Use the Algorithm
// value CRUnknownK() with Sort for cancellation support.
func SortCRUnknownK(o Oracle, cfg Config) (Result, error) {
	return Sort(context.Background(), o, CRUnknownK(), cfg)
}

// ErrAdaptiveExhausted is returned by SortConstRoundERAdaptive when
// halving λ reached its floor without success.
var ErrAdaptiveExhausted = core.ErrAdaptiveExhausted

// SortConstRoundERAdaptive runs the Theorem 4 algorithm without knowing
// λ, halving a starting guess after every failure (the paper's remark).
// It returns the λ that succeeded alongside the result.
//
// Deprecated: v1 entry point, kept because the Algorithm interface does
// not surface the successful λ. Prefer ConstRoundERAdaptive(opt) with
// Sort when the final λ is not needed.
func SortConstRoundERAdaptive(o Oracle, opt ConstRoundOptions, cfg Config) (Result, float64, error) {
	return core.SortConstRoundERAdaptive(NewSession(o, ModeER, cfg), core.AdaptiveConstRoundConfig{
		StartLambda: opt.Lambda,
		D:           opt.D,
		MaxRetries:  opt.MaxRetries,
		Rng:         rand.New(rand.NewSource(opt.Seed)),
	})
}

// SortTwoClassER sorts inputs promised to have at most two classes in
// O(1) ER rounds, with no lower bound on the smaller class — the k = 2
// case the paper's conclusion notes follows from classic parallel fault
// diagnosis. If the two-class promise might be false, Certify the result.
//
// Deprecated: v1 entry point, kept as a thin wrapper. Use the Algorithm
// value TwoClassER(maxRetries, seed) with Sort for cancellation support.
func SortTwoClassER(o Oracle, maxRetries int, seed int64, cfg Config) (Result, error) {
	return Sort(context.Background(), o, TwoClassER(maxRetries, seed), cfg)
}

// Majority finds an element of the strict-majority class (> n/2 members)
// with ≤ 2(n−1) equivalence tests (Boyer–Moore MJRTY + verification),
// returning the candidate, its exact class size, and whether it is a
// strict majority — one of the related problems (Section 1.1) this
// substrate solves directly.
func Majority(o Oracle, cfg Config) (candidate, size int, isMajority bool) {
	return majority.Majority(NewSession(o, ModeER, cfg))
}

// LargestClass finds an element of the largest equivalence class (the
// comparison-model "mode") and its size.
func LargestClass(o Oracle, cfg Config) (candidate, size int) {
	return majority.Mode(NewSession(o, ModeER, cfg))
}

// SortRoundRobin runs the sequential round-robin regimen of Jayapaul et
// al. — the algorithm whose total comparisons Section 4 of the paper
// bounds distribution by distribution. Comparisons are charged one per
// round.
//
// Deprecated: v1 entry point, kept as a thin wrapper. Use the Algorithm
// value RoundRobin() with Sort for cancellation support.
func SortRoundRobin(o Oracle, cfg Config) (Result, error) {
	return Sort(context.Background(), o, RoundRobin(), cfg)
}

// SortNaive runs the sequential one-representative-per-class baseline
// (≤ n·k comparisons).
//
// Deprecated: v1 entry point, kept as a thin wrapper. Use the Algorithm
// value Naive() with Sort for cancellation support.
func SortNaive(o Oracle, cfg Config) (Result, error) {
	return Sort(context.Background(), o, Naive(), cfg)
}

// SameClassification reports whether two labelings induce the same
// partition, ignoring label values.
func SameClassification(a, b []int) bool { return core.SameClassification(a, b) }

// Certify verifies a claimed classification against an oracle with the
// minimum certificate: each element against its class representative plus
// all representative pairs — n−k+(k choose 2) tests in shared ER rounds.
// It returns nil iff the classes are correct and complete.
func Certify(o Oracle, classes [][]int, cfg Config) error {
	return core.Certify(NewSession(o, ModeER, cfg), classes)
}

// Recorder wraps an oracle and keeps a transcript of every test — useful
// for debugging custom algorithms (e.g. detecting repeated pairs). Use
// with Config{Workers: 1} for an ordered transcript.
type Recorder = model.Recorder

// NewRecorder wraps an oracle with a recording layer.
func NewRecorder(o Oracle) *Recorder { return model.NewRecorder(o) }

// Incremental maintains a complete classification while elements arrive
// over time, folding buffered arrivals in with single compounding rounds
// (the online counterpart of SortCR).
type Incremental = core.Incremental

// NewIncremental creates an incremental sorter over the oracle's
// universe; elements are classified as they are Added.
func NewIncremental(o Oracle, cfg Config) (*Incremental, error) {
	return core.NewIncremental(NewSession(o, ModeCR, cfg))
}

//
// Classification service (the online, sharded front end; cmd/ecs-serve).
//

// ServiceConfig tunes the sharded classification service: shard count,
// batching policy, snapshot staleness bound, and per-session processor
// and worker budgets. The zero value is ready to use.
type ServiceConfig = service.Config

// Service is a long-running classification engine: named collections,
// each an Incremental sorter over a pluggable oracle, sharded across
// single-writer goroutines with batched compounding flushes and
// copy-on-flush snapshots for lock-free reads. Serve it over HTTP with
// its Handler method (see cmd/ecs-serve) or drive it in process.
type Service = service.Service

// NewService starts a classification service; Close it when done. It
// panics if durable recovery fails — use OpenService when
// ServiceConfig.DataDir is set.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenService starts a classification service, first recovering durable
// state (checkpoint + write-ahead-log replay) when ServiceConfig.DataDir
// is set. Recovered collections are bit-identical — classes and cost
// stats — to the pre-restart state implied by the log. See
// docs/PERSISTENCE.md for the on-disk format and crash-safety protocol.
func OpenService(cfg ServiceConfig) (*Service, error) { return service.Open(cfg) }

// ServiceRecoveryInfo summarizes what OpenService rebuilt from the data
// directory (collections restored, WAL records replayed, torn tails
// truncated, wall time) — exposed by Service.Recovery and /metrics.
type ServiceRecoveryInfo = service.RecoveryInfo

// OracleSpec declares the equivalence oracle behind a service
// collection: one of the paper's applications (secret handshakes —
// in-process or over a message-passing agent network —, fault
// diagnosis, graph isomorphism) or the plain label oracle.
type OracleSpec = service.OracleSpec

// GraphSpec is the wire form of one graph in a graph-iso OracleSpec.
type GraphSpec = service.GraphSpec

// Oracle kinds accepted by OracleSpec.Kind.
const (
	OracleKindLabel           = service.KindLabel
	OracleKindHandshake       = service.KindHandshake
	OracleKindHandshakeAgents = service.KindHandshakeAgents
	OracleKindFault           = service.KindFault
	OracleKindFaultAgents     = service.KindFaultAgents
	OracleKindGraphIso        = service.KindGraphIso
)

// ServiceSnapshot is a collection's published answer: the partition at
// the last flush plus the session cost that produced it. Snapshots are
// flat underneath — one backing array plus an element→class index — so
// publication is a pair of memmoves and ClassIndexOf is an O(1) lookup.
type ServiceSnapshot = service.Snapshot

// ServiceClassView is one element's class as served from a collection
// snapshot: the payload of the service's O(1) ClassOf point lookup
// (GET /v1/collections/{key}/classes/{element}).
type ServiceClassView = service.ClassView

// ServiceChurnResult summarizes one service churn operation — a delete
// or a class invalidation — as returned by Service.DeleteItem and
// Service.InvalidateClass.
type ServiceChurnResult = service.ChurnResult

// FaultSpec declares an injected fault profile for a collection's
// oracle (errors, silently flipped answers, latency, a stuck-after
// point) — the chaos-testing half of the fault-tolerance layer.
type FaultSpec = service.FaultSpec

// ResilienceSpec tunes the oracle fault-tolerance middleware riding
// over a collection's oracle: per-ask timeout, bounded retries with
// jittered backoff, k-of-n majority voting, and the circuit breaker
// that degrades the collection to read-only. See the README's Fault
// tolerance section.
type ResilienceSpec = service.ResilienceSpec

// RepairConfig tunes the background self-repair daemon: sweep interval,
// samples per collection, and the sampling distribution over the
// class-ordered element frame. See docs/REPAIR.md.
type RepairConfig = service.RepairConfig

// RepairReport summarizes one self-repair sweep (Service.RepairSweep):
// pairs sampled, divergences found, corrections applied.
type RepairReport = service.RepairReport

// StressConfig shapes a synthetic concurrent ingestion workload for
// service benchmarking.
type StressConfig = service.StressConfig

// StressReport is the measured outcome of RunServiceStress.
type StressReport = service.StressReport

// RunServiceStress drives a fresh service with concurrent batched
// ingestion, verifies every collection's final answer, and reports
// wall-clock throughput.
func RunServiceStress(cfg StressConfig) (StressReport, error) {
	return service.RunStress(cfg)
}

//
// Oracles.
//

// LabelOracle answers from explicit class labels.
type LabelOracle = oracle.Label

// NewLabelOracle builds an oracle where elements i and j are equivalent
// iff labels[i] == labels[j].
func NewLabelOracle(labels []int) *LabelOracle { return oracle.NewLabel(labels) }

// HandshakeOracle simulates cryptographic secret handshakes: each test
// runs an HMAC-SHA256 challenge–response between two agent goroutines.
type HandshakeOracle = oracle.Handshake

// NewHandshakeOracle enrolls agents into groups given by labels; agents
// in one group share a key derived from a master secret seeded by seed.
func NewHandshakeOracle(labels []int, seed int64) *HandshakeOracle {
	return oracle.NewHandshake(labels, seed)
}

// FaultOracle simulates generalized fault diagnosis over hidden malware
// states (worm-infection bitmasks).
type FaultOracle = oracle.Fault

// NewFaultOracle builds the oracle from explicit worm bitmasks.
func NewFaultOracle(states []uint64) *FaultOracle { return oracle.NewFault(states) }

// RandomInfections infects n machines with numWorms worms independently
// with probability p each.
func RandomInfections(n, numWorms int, p float64, rng *rand.Rand) *FaultOracle {
	return oracle.RandomInfections(n, numWorms, p, rng)
}

// Graph is a small simple undirected graph for the graph-mining oracle.
type Graph = oracle.Graph

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return oracle.NewGraph(n) }

// Isomorphic decides graph isomorphism (WL refinement + backtracking).
func Isomorphic(a, b *Graph) bool { return oracle.Isomorphic(a, b) }

// GraphIsoOracle classifies a collection of graphs by isomorphism.
type GraphIsoOracle = oracle.GraphIso

// NewGraphIsoOracle wraps a graph collection.
func NewGraphIsoOracle(graphs []*Graph) *GraphIsoOracle { return oracle.NewGraphIso(graphs) }

// RandomGraphCollection realizes class labels as permuted copies of
// pairwise non-isomorphic random base graphs on `vertices` vertices.
func RandomGraphCollection(labels []int, vertices int, rng *rand.Rand) *GraphIsoOracle {
	return oracle.RandomGraphCollection(labels, vertices, rng)
}

// CanonicalCertificate returns a canonical-form string for g: two graphs
// are isomorphic iff their certificates are equal (WL refinement +
// branch-and-bound minimal adjacency encoding).
func CanonicalCertificate(g *Graph) string { return oracle.Canonical(g) }

// GraphIsoCachedOracle is the graph-mining oracle with canonical-form
// caching: one certificate per graph up front, then every test is a
// string comparison — the practical engine for large mining workloads.
type GraphIsoCachedOracle = oracle.GraphIsoCached

// NewGraphIsoCachedOracle wraps a collection, precomputing certificates.
func NewGraphIsoCachedOracle(graphs []*Graph) *GraphIsoCachedOracle {
	return oracle.NewGraphIsoCached(graphs)
}

//
// Distributed agent networks (the ER model's physical reality).
//

// Agent is one autonomous participant in a distributed equivalence
// protocol; see AgentNetwork.
type Agent = agents.Agent

// AgentNetwork simulates n message-passing agents; it executes whole
// comparison rounds as concurrent pairwise protocol sessions and
// physically enforces the one-handshake-per-agent-per-round ER rule.
type AgentNetwork = agents.Network

// NewAgentNetwork wraps a roster of agents.
func NewAgentNetwork(roster []Agent) *AgentNetwork { return agents.NewNetwork(roster) }

// KeyAgents builds secret-handshake agents: one HMAC group key per
// distinct label, derived from masterSeed.
func KeyAgents(labels []int, masterSeed int64) []Agent {
	return agents.GroupKeys(labels, masterSeed)
}

// StateAgents builds fault-diagnosis agents comparing private state
// values via salted digests.
func StateAgents(states []uint64) []Agent { return agents.StateRoster(states) }

// NewAgentSession creates an ER session whose rounds execute on the
// network — each comparison is a real two-goroutine protocol run. The
// network's protocol sessions dispatch from cfg.Runtime, or from the
// shared pool when it is nil. The binding is per-session: each call gets
// its own bound executor, so creating a second session over the same
// network never re-routes an earlier session's rounds. Every ER
// Algorithm accepts the returned session, e.g.:
//
//	nw := ecsort.NewAgentNetwork(ecsort.KeyAgents(labels, seed))
//	res, err := ecsort.ER().Sort(ctx, ecsort.NewAgentSession(nw, ecsort.Config{}))
func NewAgentSession(nw *AgentNetwork, cfg Config) *Session {
	opts := append(cfg.options(), model.WithExecutor(nw.Bound(cfg.Runtime)))
	return model.NewSession(nw, ModeER, opts...)
}

// SortERDistributed runs the Theorem 2 algorithm with every round
// executed as concurrent protocol sessions on the network.
//
// Deprecated: use ER().Sort with a caller-supplied context and
// NewAgentSession, which keeps the sort cancellable.
func SortERDistributed(nw *AgentNetwork, cfg Config) (Result, error) {
	return ER().Sort(context.Background(), NewAgentSession(nw, cfg))
}

// SortRoundRobinDistributed runs the sequential regimen over the network
// (one protocol session per comparison).
//
// Deprecated: use RoundRobin().Sort with a caller-supplied context and
// NewAgentSession, which keeps the sort cancellable.
func SortRoundRobinDistributed(nw *AgentNetwork, cfg Config) (Result, error) {
	return RoundRobin().Sort(context.Background(), NewAgentSession(nw, cfg))
}

//
// Distributions (Section 4).
//

// Distribution is a probability distribution over class indices ordered
// most-to-least likely.
type Distribution = dist.Distribution

// NewUniform returns the uniform distribution on k classes.
func NewUniform(k int) Distribution { return dist.NewUniform(k) }

// NewGeometric returns the geometric distribution: class i has
// probability pⁱ(1−p).
func NewGeometric(p float64) Distribution { return dist.NewGeometric(p) }

// NewPoisson returns the Poisson distribution with rate lambda.
func NewPoisson(lambda float64) Distribution { return dist.NewPoisson(lambda) }

// NewZeta returns the zeta (Zipf) distribution with exponent s > 1.
func NewZeta(s float64) Distribution { return dist.NewZeta(s) }

// SampleLabels draws n independent class labels from d.
func SampleLabels(d Distribution, n int, rng *rand.Rand) []int {
	return dist.Labels(d, n, rng)
}

//
// Lower-bound adversaries (Section 3).
//

// Adversary is an adaptive oracle realizing the paper's lower bounds; run
// algorithms against it with Config{Workers: 1}.
type Adversary = adversary.Adversary

// NewEqualSizeAdversary forces Ω(n²/f) comparisons on any algorithm when
// every class must end with exactly f elements (Theorem 5). f must
// divide n.
func NewEqualSizeAdversary(n, f int) *Adversary { return adversary.NewEqualSize(n, f) }

// NewSmallestClassAdversary forces Ω(n²/ℓ) comparisons before any
// algorithm can identify a member of the smallest class (Theorem 6).
func NewSmallestClassAdversary(n, l int) *Adversary { return adversary.NewSmallestClass(n, l) }
