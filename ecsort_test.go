package ecsort

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPublicSortersAgree runs every public entry point on one instance
// and checks they produce the same partition.
func TestPublicSortersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	labels := SampleLabels(NewUniform(6), 200, rng)
	o := NewLabelOracle(labels)

	results := map[string]Result{}
	var err error
	if results["cr"], err = SortCR(o, 6, Config{}); err != nil {
		t.Fatal(err)
	}
	if results["er"], err = SortER(o, Config{}); err != nil {
		t.Fatal(err)
	}
	if results["rr"], err = SortRoundRobin(o, Config{}); err != nil {
		t.Fatal(err)
	}
	if results["naive"], err = SortNaive(o, Config{}); err != nil {
		t.Fatal(err)
	}
	want := o.Labels()
	for name, res := range results {
		if !SameClassification(res.Labels(200), want) {
			t.Errorf("%s: wrong classification", name)
		}
		if res.Stats.Comparisons == 0 {
			t.Errorf("%s: zero comparisons recorded", name)
		}
	}
}

func TestPublicConstRound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := SampleLabels(NewUniform(3), 150, rng)
	o := NewLabelOracle(labels)
	res, err := SortConstRoundER(o, ConstRoundOptions{Lambda: 0.2, D: 8, MaxRetries: 5, Seed: 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !SameClassification(res.Labels(150), o.Labels()) {
		t.Fatal("wrong classification")
	}
}

func TestPublicConstRoundFailure(t *testing.T) {
	labels := make([]int, 100)
	labels[0] = 1 // smallest class has 1 element; λ=0.4 is hopeless
	o := NewLabelOracle(labels)
	_, err := SortConstRoundER(o, ConstRoundOptions{Lambda: 0.4, D: 2, MaxRetries: 1, Seed: 4}, Config{})
	if err != nil && !errors.Is(err, ErrConstRoundFailed) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

// TestApplicationOraclesEndToEnd sorts with each motivating-application
// oracle through the public API.
func TestApplicationOraclesEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	t.Run("secret handshakes", func(t *testing.T) {
		labels := SampleLabels(NewUniform(4), 40, rng)
		agents := NewHandshakeOracle(labels, 99)
		res, err := SortER(agents, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !SameClassification(res.Labels(40), labels) {
			t.Fatal("handshake sort wrong")
		}
	})

	t.Run("fault diagnosis", func(t *testing.T) {
		machines := RandomInfections(60, 3, 0.4, rng)
		res, err := SortCR(machines, machines.NumStates(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !SameClassification(res.Labels(60), machines.TruthLabels()) {
			t.Fatal("fault sort wrong")
		}
	})

	t.Run("graph mining", func(t *testing.T) {
		labels := SampleLabels(NewUniform(3), 24, rng)
		graphs := RandomGraphCollection(labels, 8, rng)
		res, err := SortCR(graphs, 3, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !SameClassification(res.Labels(24), labels) {
			t.Fatal("graph sort wrong")
		}
	})
}

func TestPublicAdversary(t *testing.T) {
	adv := NewEqualSizeAdversary(48, 4)
	res, err := SortRoundRobin(adv, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Classes {
		if len(c) != 4 {
			t.Fatalf("adversary class size %d, want 4", len(c))
		}
	}
	if res.Stats.Comparisons < int64(48*48/(64*4)) {
		t.Fatalf("comparisons %d below Lemma 3 bound", res.Stats.Comparisons)
	}
	if err := adv.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigKnobs(t *testing.T) {
	labels := SampleLabels(NewUniform(4), 64, rand.New(rand.NewSource(6)))
	o := NewLabelOracle(labels)
	tight, err := SortER(o, Config{Processors: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SortER(o, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.Rounds <= loose.Stats.Rounds {
		t.Errorf("4-processor run used %d rounds, full run %d — budget had no effect",
			tight.Stats.Rounds, loose.Stats.Rounds)
	}
	if tight.Stats.MaxRoundSize > 4 {
		t.Errorf("MaxRoundSize %d exceeds processor budget", tight.Stats.MaxRoundSize)
	}
}

// TestPublicQuickAllOracles fuzzes the public API across oracle kinds.
func TestPublicQuickAllOracles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		k := 1 + rng.Intn(5)
		labels := SampleLabels(NewUniform(k), n, rng)
		o := NewLabelOracle(labels)
		res, err := SortER(o, Config{})
		if err != nil {
			return false
		}
		return SameClassification(res.Labels(n), labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTwoClassAndMajority(t *testing.T) {
	// A 90/10 split: two-class constant-round sort, majority, and mode.
	labels := make([]int, 100)
	for i := 0; i < 10; i++ {
		labels[i*7] = 1
	}
	o := NewLabelOracle(labels)

	res, err := SortTwoClassER(o, 5, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !SameClassification(res.Labels(100), labels) {
		t.Fatal("two-class sort wrong")
	}

	cand, size, isMaj := Majority(o, Config{})
	if !isMaj || size != 90 || labels[cand] != 0 {
		t.Fatalf("majority: cand=%d size=%d maj=%v", cand, size, isMaj)
	}

	mc, ms := LargestClass(o, Config{})
	if ms != 90 || labels[mc] != 0 {
		t.Fatalf("largest class: cand=%d size=%d", mc, ms)
	}
}

func TestDistributedSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 48
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(3)
	}

	t.Run("key agents", func(t *testing.T) {
		nw := NewAgentNetwork(KeyAgents(labels, 7))
		res, err := SortERDistributed(nw, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !SameClassification(res.Labels(n), labels) {
			t.Fatal("wrong classification")
		}
		if nw.Sessions() != res.Stats.Comparisons {
			t.Fatalf("sessions %d != comparisons %d", nw.Sessions(), res.Stats.Comparisons)
		}
	})

	t.Run("state agents", func(t *testing.T) {
		states := make([]uint64, n)
		for i, l := range labels {
			states[i] = uint64(l) << 7
		}
		nw := NewAgentNetwork(StateAgents(states))
		res, err := SortRoundRobinDistributed(nw, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !SameClassification(res.Labels(n), labels) {
			t.Fatal("wrong classification")
		}
	})

	t.Run("custom session over network", func(t *testing.T) {
		nw := NewAgentNetwork(KeyAgents([]int{0, 0, 1, 1}, 3))
		s := NewAgentSession(nw, Config{})
		res, err := s.Round([]Pair{{A: 0, B: 1}, {A: 2, B: 3}})
		if err != nil {
			t.Fatal(err)
		}
		if !res[0] || !res[1] {
			t.Fatal("wrong verdicts")
		}
	})
}

func TestCustomSession(t *testing.T) {
	o := NewLabelOracle([]int{0, 0, 1, 1})
	s := NewSession(o, ModeER, Config{})
	res, err := s.Round([]Pair{{A: 0, B: 1}, {A: 2, B: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0] || !res[1] {
		t.Fatal("wrong answers")
	}
	if st := s.Stats(); st.Rounds != 1 || st.Comparisons != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRuntimeOption: sorting on an explicit Runtime pool must be
// bit-identical to the default, and the pool must actually execute jobs.
func TestRuntimeOption(t *testing.T) {
	pool := NewRuntime(3)
	defer pool.Close()
	rng := rand.New(rand.NewSource(44))
	labels := SampleLabels(NewUniform(5), 512, rng)
	o := NewLabelOracle(labels)

	def, err := SortCR(o, 5, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := SortCR(o, 5, Config{Workers: 3, Runtime: pool})
	if err != nil {
		t.Fatal(err)
	}
	if def.Stats != pooled.Stats {
		t.Errorf("stats diverge on explicit runtime: %+v vs %+v", def.Stats, pooled.Stats)
	}
	if !SameClassification(def.Labels(512), pooled.Labels(512)) {
		t.Error("explicit runtime changed the partition")
	}
	st := pool.Stats()
	if st.Workers != 3 {
		t.Errorf("RuntimeStats.Workers = %d, want 3", st.Workers)
	}
	if st.Jobs == 0 {
		t.Error("explicit runtime executed no parallel jobs")
	}
	if DefaultRuntime() == nil || DefaultRuntime().Size() < 1 {
		t.Error("DefaultRuntime not usable")
	}
}

// TestNegativeWorkersPanics: the facade must forward a negative width to
// the model's validation instead of silently dropping it.
func TestNegativeWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Config{Workers: -2} did not panic")
		}
	}()
	NewSession(NewLabelOracle([]int{0, 1}), ModeCR, Config{Workers: -2})
}
