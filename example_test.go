package ecsort_test

import (
	"fmt"
	"math/rand"

	"ecsort"
)

// The basic flow: wrap data in an oracle, sort, read classes and cost.
func ExampleSortCR() {
	oracle := ecsort.NewLabelOracle([]int{7, 3, 7, 3, 7, 9})
	res, err := ecsort.SortCR(oracle, 3, ecsort.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("classes:", res.Canonical())
	// Output:
	// classes: [[0 2 4] [1 3] [5]]
}

// SortER needs no knowledge of the number of classes.
func ExampleSortER() {
	oracle := ecsort.NewLabelOracle([]int{1, 2, 1, 2})
	res, err := ecsort.SortER(oracle, ecsort.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("classes:", res.NumClasses())
	// Output:
	// classes: 2
}

// A custom oracle: any type with N and a concurrency-safe Same works.
type modOracle struct{ n, m int }

func (o modOracle) N() int             { return o.n }
func (o modOracle) Same(i, j int) bool { return i%o.m == j%o.m }

func ExampleOracle() {
	res, err := ecsort.SortER(modOracle{n: 9, m: 3}, ecsort.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("classes:", res.Canonical())
	// Output:
	// classes: [[0 3 6] [1 4 7] [2 5 8]]
}

// Certify validates a classification with a minimal test schedule.
func ExampleCertify() {
	oracle := ecsort.NewLabelOracle([]int{0, 0, 1})
	fmt.Println("good:", ecsort.Certify(oracle, [][]int{{0, 1}, {2}}, ecsort.Config{}))
	err := ecsort.Certify(oracle, [][]int{{0, 1, 2}}, ecsort.Config{})
	fmt.Println("bad is rejected:", err != nil)
	// Output:
	// good: <nil>
	// bad is rejected: true
}

// Sampling inputs from the paper's Section 4 distributions.
func ExampleSampleLabels() {
	rng := rand.New(rand.NewSource(1))
	labels := ecsort.SampleLabels(ecsort.NewGeometric(0.5), 6, rng)
	fmt.Println("len:", len(labels))
	// Output:
	// len: 6
}

// The Theorem 5 adversary forces any algorithm to spend Ω(n²/f).
func ExampleNewEqualSizeAdversary() {
	adv := ecsort.NewEqualSizeAdversary(64, 4)
	res, err := ecsort.SortRoundRobin(adv, ecsort.Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("forced at least n²/(64f):", res.Stats.Comparisons >= 64*64/(64*4))
	fmt.Println("adversary consistent:", adv.Audit() == nil)
	// Output:
	// forced at least n²/(64f): true
	// adversary consistent: true
}
