package ecsort

// The API-surface golden: every exported symbol of the facade —
// functions, methods on exported types, types, consts, vars — is
// rendered from the package AST and diffed against the checked-in
// manifest api_surface.txt, so an accidental rename, signature change,
// or deletion fails CI instead of shipping. After an intentional API
// change, regenerate with:
//
//	ECSORT_UPDATE_API=1 go test -run TestAPISurface .

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

const apiManifest = "api_surface.txt"

// apiSurface renders the exported surface of the package in this
// directory, one printed declaration per block, sorted.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	// Comments are not parsed, so doc-comment edits never churn the
	// manifest — only real signature changes do.
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["ecsort"]
	if !ok {
		t.Fatalf("package ecsort not found in %v", pkgs)
	}

	var decls []string
	add := func(node any) {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		decls = append(decls, buf.String())
	}

	fileNames := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		for _, decl := range pkg.Files[name].Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				add(&ast.FuncDecl{Recv: d.Recv, Name: d.Name, Type: d.Type})
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							add(&ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{sp}})
						}
					case *ast.ValueSpec:
						if anyExported(sp.Names) {
							add(&ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{sp}})
						}
					}
				}
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n\n") + "\n"
}

// exportedRecv reports whether a method receiver names an exported
// type (generic receivers like Classes[T] included).
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

func TestAPISurface(t *testing.T) {
	got := apiSurface(t)
	if os.Getenv("ECSORT_UPDATE_API") != "" {
		if err := os.WriteFile(apiManifest, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", apiManifest, len(got))
		return
	}
	wantBytes, err := os.ReadFile(apiManifest)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with ECSORT_UPDATE_API=1 go test -run TestAPISurface .)", apiManifest, err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotSet := strings.Split(got, "\n\n")
	wantSet := strings.Split(want, "\n\n")
	inWant := map[string]bool{}
	for _, d := range wantSet {
		inWant[d] = true
	}
	inGot := map[string]bool{}
	for _, d := range gotSet {
		inGot[d] = true
	}
	var diff []string
	for _, d := range gotSet {
		if !inWant[d] {
			diff = append(diff, fmt.Sprintf("+ %s", firstLine(d)))
		}
	}
	for _, d := range wantSet {
		if !inGot[d] {
			diff = append(diff, fmt.Sprintf("- %s", firstLine(d)))
		}
	}
	t.Errorf("exported API surface drifted from %s:\n%s\n\nIf intentional, regenerate with ECSORT_UPDATE_API=1 go test -run TestAPISurface .",
		apiManifest, strings.Join(diff, "\n"))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}
