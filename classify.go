package ecsort

import "context"

// Classes is the typed outcome of Classify: the partition of the input
// items plus the cost that produced it. The partition is stored as
// index classes over the original slice (no items are copied at sort
// time); the typed accessors materialize classes on demand.
type Classes[T any] struct {
	// Indices partitions the items' positions into equivalence classes.
	Indices [][]int
	// Stats is the session cost in Valiant's model.
	Stats Stats
	// Algorithm names the regimen that produced the partition (for Auto,
	// the regimen the planner chose).
	Algorithm string

	items []T
}

// NumClasses returns the number of equivalence classes found.
func (c Classes[T]) NumClasses() int { return len(c.Indices) }

// Class materializes class i as a fresh slice of items.
func (c Classes[T]) Class(i int) []T {
	idx := c.Indices[i]
	out := make([]T, len(idx))
	for j, e := range idx {
		out[j] = c.items[e]
	}
	return out
}

// Materialize returns every class as items, in class order.
func (c Classes[T]) Materialize() [][]T {
	out := make([][]T, len(c.Indices))
	for i := range c.Indices {
		out[i] = c.Class(i)
	}
	return out
}

// Labels returns a canonical labeling over the items: items in the same
// class share a label, labels assigned by order of each class's smallest
// member index.
func (c Classes[T]) Labels() []int {
	return Result{Classes: c.Indices}.Labels(len(c.items))
}

// funcOracle adapts a typed slice plus an equivalence predicate to the
// index-oracle substrate.
type funcOracle[T any] struct {
	items []T
	eq    func(a, b T) bool
}

func (o *funcOracle[T]) N() int { return len(o.items) }

func (o *funcOracle[T]) Same(i, j int) bool { return o.eq(o.items[i], o.items[j]) }

// Classify is the typed generic front end: it sorts any slice by an
// equivalence predicate without the caller hand-rolling an index
// oracle.
//
//	classes, err := ecsort.Classify(ctx, users, func(a, b User) bool {
//		return a.Cohort == b.Cohort
//	}, ecsort.CRUnknownK(), ecsort.Config{})
//
// eq must be a true equivalence relation (reflexive, symmetric,
// transitive) and safe for concurrent calls; parallel rounds may invoke
// it from several goroutines. The wrapper adds no more than a couple of
// allocations over the raw oracle path (guarded by BenchmarkClassify),
// so there is no performance reason to prefer hand-rolled oracles.
func Classify[T any](ctx context.Context, items []T, eq func(a, b T) bool, alg Algorithm, cfg Config) (Classes[T], error) {
	res, err := Sort(ctx, &funcOracle[T]{items: items, eq: eq}, alg, cfg)
	if err != nil {
		return Classes[T]{}, err
	}
	return Classes[T]{
		Indices:   res.Classes,
		Stats:     res.Stats,
		Algorithm: res.Algorithm,
		items:     items,
	}, nil
}
