package ecsort

import (
	"fmt"
	"os"
	"regexp"
	"testing"

	"ecsort/internal/analysis"
)

// TestStaticAnalysisClean runs the full ecs-vet analyzer suite over the
// module as part of tier-1: the round/alloc/ownership/context/doc
// disciplines are proved on every test run, not just in CI.
func TestStaticAnalysisClean(t *testing.T) {
	findings, err := analysis.Vet(".")
	if err != nil {
		t.Fatalf("loading module for analysis: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("%d ecs-vet finding(s); run `go run ./cmd/ecs-vet .` for details", len(findings))
	}
}

// mergeHotpaths are the merge-engine functions whose //ecsort:hotpath
// annotations this test pins: dropping an annotation silently drops the
// hotalloc proof for that function, so removal must fail the build.
var mergeHotpaths = []string{
	"appendCross",
	"unite",
	"buildMerged",
	"growInts",
	"round",
	"streamGroup",
	"mergeGroupsCR",
}

func TestMergeHotpathAnnotationsPresent(t *testing.T) {
	data, err := os.ReadFile("internal/core/merge.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range mergeHotpaths {
		re := regexp.MustCompile(fmt.Sprintf(`(?m)^//ecsort:hotpath\nfunc (\([^)]*\) )?%s\(`, regexp.QuoteMeta(name)))
		if !re.Match(data) {
			t.Errorf("internal/core/merge.go: %s has lost its //ecsort:hotpath annotation (must sit on the last line of the doc comment)", name)
		}
	}
}
