// Command ecsort runs one equivalence class sorting algorithm on a
// synthetic input and reports the classes found and the cost in Valiant's
// parallel comparison model.
//
// Usage:
//
//	ecsort -algo cr   -n 100000 -k 25
//	ecsort -algo er   -n 50000 -dist zeta -param 2.0
//	ecsort -algo const -n 20000 -k 3 -lambda 0.2
//	ecsort -algo rr   -n 100000 -dist geometric -param 0.1
//	ecsort -algo naive -n 10000 -k 10 -oracle handshake
//
// The -oracle flag picks the comparison mechanism: plain labels (fast),
// simulated secret handshakes (HMAC challenge–response between agent
// goroutines), simulated fault diagnosis, or graph isomorphism.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ecsort"
)

func main() {
	var (
		algo    = flag.String("algo", "cr", "algorithm: cr | er | const | rr | naive")
		n       = flag.Int("n", 10000, "number of elements")
		k       = flag.Int("k", 10, "number of classes (uniform inputs; also SortCR's k hint)")
		distKin = flag.String("dist", "uniform", "class distribution: uniform | geometric | poisson | zeta")
		param   = flag.Float64("param", 0, "distribution parameter (p, λ, or s); 0 = default")
		lambda  = flag.Float64("lambda", 0.2, "const algorithm: smallest class fraction λ")
		d       = flag.Int("d", 0, "const algorithm: Hamiltonian cycles (0 = theory constant)")
		oracleK = flag.String("oracle", "label", "oracle: label | handshake | fault | graphiso | graphiso-cached | agents")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print every class")
		certify = flag.Bool("certify", false, "re-verify the answer with a minimal certificate schedule")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	dist, err := pickDistribution(*distKin, *k, *param)
	if err != nil {
		fatal(err)
	}
	labels := ecsort.SampleLabels(dist, *n, rng)

	oracle, err := pickOracle(*oracleK, labels, *seed, rng)
	if err != nil {
		fatal(err)
	}

	var res ecsort.Result
	switch *algo {
	case "cr":
		res, err = ecsort.SortCR(oracle, *k, ecsort.Config{})
	case "er":
		res, err = ecsort.SortER(oracle, ecsort.Config{})
	case "const":
		res, err = ecsort.SortConstRoundER(oracle, ecsort.ConstRoundOptions{
			Lambda: *lambda, D: *d, MaxRetries: 5, Seed: *seed,
		}, ecsort.Config{})
	case "rr":
		res, err = ecsort.SortRoundRobin(oracle, ecsort.Config{})
	case "naive":
		res, err = ecsort.SortNaive(oracle, ecsort.Config{})
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("algorithm:    %s\n", *algo)
	fmt.Printf("oracle:       %s\n", *oracleK)
	fmt.Printf("input:        n=%d, %s\n", *n, dist.Name())
	fmt.Printf("classes:      %d\n", res.NumClasses())
	fmt.Printf("comparisons:  %d\n", res.Stats.Comparisons)
	fmt.Printf("rounds:       %d\n", res.Stats.Rounds)
	fmt.Printf("widest round: %d comparisons\n", res.Stats.MaxRoundSize)
	if correct := ecsort.SameClassification(res.Labels(*n), labels); correct {
		fmt.Printf("verified:     classification matches ground truth\n")
	} else {
		fmt.Printf("verified:     MISMATCH against ground truth\n")
		os.Exit(1)
	}
	if *certify {
		if cerr := ecsort.Certify(oracle, res.Classes, ecsort.Config{}); cerr != nil {
			fmt.Printf("certificate:  REJECTED: %v\n", cerr)
			os.Exit(1)
		}
		fmt.Printf("certificate:  accepted (n−k+C(k,2) extra tests)\n")
	}
	if *verbose {
		for i, c := range res.Canonical() {
			fmt.Printf("class %d (%d members): %v\n", i, len(c), c)
		}
	}
}

func pickDistribution(kind string, k int, param float64) (ecsort.Distribution, error) {
	switch kind {
	case "uniform":
		return ecsort.NewUniform(k), nil
	case "geometric":
		if param == 0 {
			param = 0.5
		}
		return ecsort.NewGeometric(param), nil
	case "poisson":
		if param == 0 {
			param = 5
		}
		return ecsort.NewPoisson(param), nil
	case "zeta":
		if param == 0 {
			param = 2
		}
		return ecsort.NewZeta(param), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", kind)
	}
}

func pickOracle(kind string, labels []int, seed int64, rng *rand.Rand) (ecsort.Oracle, error) {
	switch kind {
	case "label":
		return ecsort.NewLabelOracle(labels), nil
	case "handshake":
		return ecsort.NewHandshakeOracle(labels, seed), nil
	case "fault":
		// Realize each class label as a distinct worm-state bitmask.
		states := make([]uint64, len(labels))
		for i, l := range labels {
			states[i] = uint64(l) * 0x9e3779b97f4a7c15 // distinct per class
		}
		return ecsort.NewFaultOracle(states), nil
	case "graphiso":
		if len(labels) > 2000 {
			return nil, fmt.Errorf("graphiso oracle capped at n=2000 (each test is an isomorphism search)")
		}
		return ecsort.RandomGraphCollection(labels, 10, rng), nil
	case "graphiso-cached":
		if len(labels) > 20000 {
			return nil, fmt.Errorf("graphiso-cached oracle capped at n=20000")
		}
		plain := ecsort.RandomGraphCollection(labels, 10, rng)
		graphs := make([]*ecsort.Graph, plain.N())
		for i := range graphs {
			graphs[i] = plain.Graph(i)
		}
		return ecsort.NewGraphIsoCachedOracle(graphs), nil
	case "agents":
		// A live distributed network: every comparison is a real
		// two-goroutine protocol session.
		return ecsort.NewAgentNetwork(ecsort.KeyAgents(labels, seed)), nil
	default:
		return nil, fmt.Errorf("unknown oracle %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecsort:", err)
	os.Exit(1)
}
