// Command ecsort runs one equivalence class sorting algorithm on a
// synthetic input and reports the classes found and the cost in Valiant's
// parallel comparison model.
//
// Usage:
//
//	ecsort -algo cr    -n 100000 -k 25
//	ecsort -algo er    -n 50000 -dist zeta -param 2.0
//	ecsort -algo const -n 20000 -k 3 -lambda 0.2
//	ecsort -algo auto  -n 100000 -k 2
//	ecsort -algo rr    -n 100000 -dist geometric -param 0.1
//	ecsort -algo naive -n 10000 -k 10 -oracle handshake
//	ecsort -algos                      # list the registry
//
// The -algo flag dispatches through the ecsort algorithm registry
// (ecsort.AlgorithmByName); -algos lists every regimen with its mode and
// hint requirements. "auto" plans the cheapest applicable regimen from
// the -k/-lambda hints and reports its choice. The -oracle flag picks
// the comparison mechanism: plain labels (fast), simulated secret
// handshakes (HMAC challenge–response between agent goroutines),
// simulated fault diagnosis, or graph isomorphism. Interrupting a run
// (Ctrl-C) cancels the sort between parallel rounds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"

	"ecsort"
)

func main() {
	var (
		algoName = flag.String("algo", "cr", "algorithm registry name or alias (see -algos)")
		list     = flag.Bool("algos", false, "list the algorithm registry and exit")
		n        = flag.Int("n", 10000, "number of elements")
		k        = flag.Int("k", 10, "number of classes (uniform inputs; also the registry's k hint)")
		distKin  = flag.String("dist", "uniform", "class distribution: uniform | geometric | poisson | zeta")
		param    = flag.Float64("param", 0, "distribution parameter (p, λ, or s); 0 = default")
		lambda   = flag.Float64("lambda", 0, "smallest class fraction hint λ (const regimens, auto)")
		d        = flag.Int("d", 0, "const regimens: Hamiltonian cycles (0 = theory constant)")
		oracleK  = flag.String("oracle", "label", "oracle: label | handshake | fault | graphiso | graphiso-cached | agents")
		seed     = flag.Int64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "print every class")
		certify  = flag.Bool("certify", false, "re-verify the answer with a minimal certificate schedule")
	)
	flag.Parse()

	if *list {
		printRegistry()
		return
	}

	alg, err := ecsort.AlgorithmByName(*algoName, ecsort.Hints{
		K: *k, Lambda: *lambda, D: *d, Seed: *seed, MaxRetries: 5,
	})
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	dist, err := pickDistribution(*distKin, *k, *param)
	if err != nil {
		fatal(err)
	}
	labels := ecsort.SampleLabels(dist, *n, rng)

	oracle, err := pickOracle(*oracleK, labels, *seed, rng)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels between parallel rounds; the sort returns ctx.Err().
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := ecsort.Sort(ctx, oracle, alg, ecsort.Config{})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ecsort: interrupted — sort cancelled between rounds")
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("algorithm:    %s\n", res.Algorithm)
	fmt.Printf("oracle:       %s\n", *oracleK)
	fmt.Printf("input:        n=%d, %s\n", *n, dist.Name())
	fmt.Printf("classes:      %d\n", res.NumClasses())
	fmt.Printf("comparisons:  %d\n", res.Stats.Comparisons)
	fmt.Printf("rounds:       %d\n", res.Stats.Rounds)
	fmt.Printf("widest round: %d comparisons\n", res.Stats.MaxRoundSize)
	if correct := ecsort.SameClassification(res.Labels(*n), labels); correct {
		fmt.Printf("verified:     classification matches ground truth\n")
	} else {
		fmt.Printf("verified:     MISMATCH against ground truth\n")
		os.Exit(1)
	}
	if *certify {
		if cerr := ecsort.Certify(oracle, res.Classes, ecsort.Config{}); cerr != nil {
			fmt.Printf("certificate:  REJECTED: %v\n", cerr)
			os.Exit(1)
		}
		fmt.Printf("certificate:  accepted (n−k+C(k,2) extra tests)\n")
	}
	if *verbose {
		for i, c := range res.Canonical() {
			fmt.Printf("class %d (%d members): %v\n", i, len(c), c)
		}
	}
}

func printRegistry() {
	fmt.Printf("%-24s %-4s %-22s %s\n", "NAME", "MODE", "ROUNDS", "HINTS (required*)")
	for _, info := range ecsort.Algorithms() {
		hints := make([]string, 0, len(info.Hints))
		req := map[string]bool{}
		for _, r := range info.Required {
			req[r] = true
		}
		for _, h := range info.Hints {
			if req[h] {
				h += "*"
			}
			hints = append(hints, h)
		}
		fmt.Printf("%-24s %-4s %-22s %s\n", info.Name, info.Mode, info.Rounds, strings.Join(hints, ","))
		fmt.Printf("%-24s   %s\n", "", info.Description)
	}
}

func pickDistribution(kind string, k int, param float64) (ecsort.Distribution, error) {
	switch kind {
	case "uniform":
		return ecsort.NewUniform(k), nil
	case "geometric":
		if param == 0 {
			param = 0.5
		}
		return ecsort.NewGeometric(param), nil
	case "poisson":
		if param == 0 {
			param = 5
		}
		return ecsort.NewPoisson(param), nil
	case "zeta":
		if param == 0 {
			param = 2
		}
		return ecsort.NewZeta(param), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", kind)
	}
}

func pickOracle(kind string, labels []int, seed int64, rng *rand.Rand) (ecsort.Oracle, error) {
	switch kind {
	case "label":
		return ecsort.NewLabelOracle(labels), nil
	case "handshake":
		return ecsort.NewHandshakeOracle(labels, seed), nil
	case "fault":
		// Realize each class label as a distinct worm-state bitmask.
		states := make([]uint64, len(labels))
		for i, l := range labels {
			states[i] = uint64(l) * 0x9e3779b97f4a7c15 // distinct per class
		}
		return ecsort.NewFaultOracle(states), nil
	case "graphiso":
		if len(labels) > 2000 {
			return nil, fmt.Errorf("graphiso oracle capped at n=2000 (each test is an isomorphism search)")
		}
		return ecsort.RandomGraphCollection(labels, 10, rng), nil
	case "graphiso-cached":
		if len(labels) > 20000 {
			return nil, fmt.Errorf("graphiso-cached oracle capped at n=20000")
		}
		plain := ecsort.RandomGraphCollection(labels, 10, rng)
		graphs := make([]*ecsort.Graph, plain.N())
		for i := range graphs {
			graphs[i] = plain.Graph(i)
		}
		return ecsort.NewGraphIsoCachedOracle(graphs), nil
	case "agents":
		// A live distributed network: every comparison is a real
		// two-goroutine protocol session.
		return ecsort.NewAgentNetwork(ecsort.KeyAgents(labels, seed)), nil
	default:
		return nil, fmt.Errorf("unknown oracle %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecsort:", err)
	os.Exit(1)
}
