// Command ecs-experiments regenerates the paper's experimental artifacts:
// the Figure 5 series (Section 5), the Theorem 1/2/4 round-complexity
// sweeps, the Theorem 5/6 lower-bound sweeps, and the Theorem 7
// stochastic-dominance audit.
//
// Usage:
//
//	ecs-experiments -exp all -scale 10 -trials 3
//	ecs-experiments -exp fig5-zeta -scale 1 -trials 10   # paper-scale
//	ecs-experiments -exp lb-equal -n 1024
//
// -scale divides the paper's input sizes (10,000–200,000; zeta
// 1,000–20,000); -scale 1 -trials 10 reproduces Section 5 exactly, at the
// cost of minutes of runtime.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"

	"ecsort"
	"ecsort/internal/dist"
	"ecsort/internal/harness"
	"ecsort/internal/service"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all | algo | fig5-uniform | fig5-geometric | fig5-poisson | fig5-zeta | fig1 | rounds-cr | rounds-er | rounds-const | lb-equal | lb-smallest | dominance | zeta-exponent | procs | profile | serve-stress | cluster-stress")
		scale    = flag.Int("scale", 10, "divide the paper's input sizes by this factor")
		trials   = flag.Int("trials", 3, "trials per input size (paper: 10)")
		n        = flag.Int("n", 1024, "input size for lower-bound and dominance experiments")
		seed     = flag.Int64("seed", 2016, "random seed")
		csvDir   = flag.String("csv", "", "also write raw observations as CSV files into this directory")
		workers  = flag.Int("workers", 0, "execution-pool width for the serve-stress experiment (0: GOMAXPROCS)")
		algoSel  = flag.String("algo", "auto", "algorithm registry name for the algo experiment (ecsort -algos lists them)")
		kHint    = flag.Int("k", 8, "class count for the algo experiment's inputs and its k hint")
		lamHint  = flag.Float64("lambda", 0, "lambda hint for the algo experiment (const regimens, auto)")
		failRt   = flag.Float64("fail-rate", 0, "serve-stress: injected oracle error probability (chaos soak)")
		flipRt   = flag.Float64("flip-rate", 0, "serve-stress: injected silent wrong-answer probability (chaos soak)")
		votes    = flag.Int("votes", 0, "serve-stress: k-of-n majority votes per oracle answer under injected faults")
		delFrac  = flag.Float64("delete-fraction", 0, "serve-stress: per-batch probability of a delete+re-ingest churn op")
		batchCmp = flag.Bool("batch-oracle", false, "serve-stress: run the sweep twice — whole-chunk batch-oracle dispatch vs per-pair — and emit both (CSV column batch_oracle)")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "ecs-experiments: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}

	writeCSV := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	run := func(name string) error {
		switch name {
		case "algo":
			// Dispatch any registry regimen over the size ladder — the
			// generic form of the rounds-cr/-er/-const sweeps, wired
			// through the same registry the CLIs and the service use.
			// Ctrl-C cancels the current sort between rounds.
			alg, err := ecsort.AlgorithmByName(*algoSel, ecsort.Hints{
				K: *kHint, Lambda: *lamHint, Seed: *seed, MaxRetries: 5,
			})
			if err != nil {
				return err
			}
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			defer stop()
			fmt.Printf("algorithm sweep: -algo %s (k=%d, lambda=%g)\n", *algoSel, *kHint, *lamHint)
			fmt.Printf("%10s  %-24s %14s %8s %14s\n", "n", "algorithm", "comparisons", "rounds", "widest round")
			for _, size := range scaledSizes(*scale) {
				rng := rand.New(rand.NewSource(*seed))
				labels := ecsort.SampleLabels(ecsort.NewUniform(*kHint), size, rng)
				res, err := ecsort.Sort(ctx, ecsort.NewLabelOracle(labels), alg, ecsort.Config{})
				if err != nil {
					return err
				}
				if !ecsort.SameClassification(res.Labels(size), labels) {
					return fmt.Errorf("n=%d: wrong classification", size)
				}
				fmt.Printf("%10d  %-24s %14d %8d %14d\n",
					size, res.Algorithm, res.Stats.Comparisons, res.Stats.Rounds, res.Stats.MaxRoundSize)
			}
			return nil
		case "fig5-uniform", "fig5-geometric", "fig5-poisson", "fig5-zeta":
			family := name[len("fig5-"):]
			panel, err := harness.RunFig5Panel(family, *scale, *trials, *seed)
			if err != nil {
				return err
			}
			if err := writeCSV(name, func(w io.Writer) error {
				return harness.WriteFig5CSV(w, panel)
			}); err != nil {
				return err
			}
			return harness.RenderFig5(os.Stdout, panel)
		case "zeta-exponent":
			ss := []float64{1.1, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.5, 3.0}
			sizes := harness.PaperSizes(true, *scale)
			sweep, err := harness.RunZetaExponentSweep(ss, sizes, *trials, *seed)
			if err != nil {
				return err
			}
			if err := writeCSV(name, func(w io.Writer) error {
				return harness.WriteZetaExponentCSV(w, sweep)
			}); err != nil {
				return err
			}
			return harness.RenderZetaExponents(os.Stdout, sweep)
		case "fig1":
			for _, tc := range []struct{ n, k int }{{1 << 14, 2}, {1 << 17, 4}, {1 << 20, 8}} {
				if err := harness.RenderFigure1(os.Stdout, tc.n, tc.k, harness.Figure1Schedule(tc.n, tc.k)); err != nil {
					return err
				}
			}
			return nil
		case "rounds-cr":
			for _, k := range []int{2, 4, 8, 16} {
				s, err := harness.RunRoundsCR(k, scaledSizes(*scale), *seed)
				if err != nil {
					return err
				}
				if err := harness.RenderRounds(os.Stdout, s,
					fmt.Sprintf("Theorem 1: O(k + log log n) rounds; k=%d, expect a flat column", k)); err != nil {
					return err
				}
			}
			return nil
		case "rounds-er":
			for _, k := range []int{2, 4, 8} {
				s, err := harness.RunRoundsER(k, scaledSizes(*scale), *seed)
				if err != nil {
					return err
				}
				if err := harness.RenderRounds(os.Stdout, s,
					fmt.Sprintf("Theorem 2: O(k log n) rounds; k=%d, expect rounds ∝ log n", k)); err != nil {
					return err
				}
			}
			return nil
		case "rounds-const":
			for _, lambda := range []float64{0.1, 0.2, 0.3} {
				k := int(1 / lambda)
				s, err := harness.RunRoundsConst(lambda, 8, k, scaledSizes(*scale), *seed)
				if err != nil {
					return err
				}
				if err := harness.RenderRounds(os.Stdout, s,
					fmt.Sprintf("Theorem 4: O(1) rounds for ℓ ≥ λn; λ=%.2f, expect a flat column", lambda)); err != nil {
					return err
				}
			}
			return nil
		case "profile":
			for _, algo := range []string{"cr", "er", "const"} {
				prof, err := harness.RunRoundProfile(algo, min(*n, 4096), 4, *seed)
				if err != nil {
					return err
				}
				if err := harness.RenderRoundProfile(os.Stdout, prof); err != nil {
					return err
				}
			}
			return nil
		case "serve-stress":
			// Service-level load generation: concurrent batched ingestion
			// into the sharded classification service, swept over shard
			// counts to show where contention stops.
			cfg := service.StressConfig{
				Collections: 16,
				Elements:    max(*n, 256),
				Classes:     16,
				Batch:       64,
				Writers:     8,
				Seed:        *seed,
				Service:     service.Config{Workers: *workers},
			}
			// Chaos knobs turn the sweep into a fault-injected soak:
			// folds run against errors/flips behind the resilience
			// middleware, churn exercises deletes, and verification is
			// allowed repair sweeps to converge (docs/REPAIR.md).
			if *failRt > 0 || *flipRt > 0 {
				cfg.Faults = &service.FaultSpec{FailRate: *failRt, FlipRate: *flipRt, Seed: *seed}
				cfg.Resilience = &service.ResilienceSpec{
					Votes: *votes, Retries: 3, BackoffMs: 1, MaxBackoffMs: 2,
					BreakerThreshold: 10_000,
				}
				cfg.Service.Repair = service.RepairConfig{Samples: 192, Seed: *seed}
			}
			cfg.DeleteFraction = *delFrac
			points, err := harness.RunServiceSweep([]int{1, 2, 4, 8, 16}, cfg)
			if err != nil {
				return err
			}
			// -batch-oracle repeats the identical sweep with whole-chunk
			// dispatch disabled, so the combined output isolates what the
			// batch interface buys: fewer oracle invocations per round
			// (the pairs/chunk amortization column) at equal partitions.
			if *batchCmp {
				perPair := cfg
				perPair.Service.DisableBatchOracle = true
				more, err := harness.RunServiceSweep([]int{1, 2, 4, 8, 16}, perPair)
				if err != nil {
					return err
				}
				points = append(points, more...)
			}
			if err := writeCSV(name, func(w io.Writer) error {
				return harness.WriteServiceSweepCSV(w, points)
			}); err != nil {
				return err
			}
			return harness.RenderServiceSweep(os.Stdout, points)
		case "cluster-stress":
			// One level above serve-stress: the same concurrent batched
			// workload routed by a cluster coordinator across backend
			// nodes (ChanTransport — the wire codec and message-passing
			// discipline without socket noise), swept over node counts.
			cfg := harness.ClusterStressConfig{
				Collections: 16,
				Elements:    max(*n, 256),
				Classes:     16,
				Batch:       64,
				Writers:     8,
				Seed:        *seed,
				Service:     service.Config{Shards: 4, BatchSize: 128, Workers: *workers},
			}
			reports, err := harness.RunClusterSweep([]int{1, 2, 4, 8}, cfg)
			if err != nil {
				return err
			}
			if err := writeCSV(name, func(w io.Writer) error {
				return harness.WriteClusterSweepCSV(w, reports)
			}); err != nil {
				return err
			}
			return harness.RenderClusterSweep(os.Stdout, reports)
		case "procs":
			procs := []int{*n, *n / 4, *n / 16, *n / 64}
			points, err := harness.RunProcessorSweep(*n, 8, procs, *seed)
			if err != nil {
				return err
			}
			return harness.RenderProcs(os.Stdout, *n, 8, points)
		case "lb-equal":
			fs := divisorsUpTo(*n, 64)
			s, err := harness.RunAdversaryEqual(*n, fs)
			if err != nil {
				return err
			}
			if err := writeCSV(name, func(w io.Writer) error {
				return harness.WriteLBCSV(w, s)
			}); err != nil {
				return err
			}
			return harness.RenderLB(os.Stdout, s)
		case "lb-smallest":
			var ls []int
			for l := 2; l <= *n/4; l *= 2 {
				ls = append(ls, l)
			}
			s, err := harness.RunAdversarySmallest(*n, ls)
			if err != nil {
				return err
			}
			return harness.RenderLB(os.Stdout, s)
		case "dominance":
			for _, d := range []dist.Distribution{
				dist.NewUniform(10), dist.NewUniform(100),
				dist.NewGeometric(0.5), dist.NewGeometric(0.02),
				dist.NewPoisson(1), dist.NewPoisson(25),
				dist.NewZeta(1.1), dist.NewZeta(2.5),
			} {
				rep, err := harness.RunDominance(d, *n, *trials, *seed)
				if err != nil {
					return err
				}
				if err := harness.RenderDominance(os.Stdout, rep); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{
			"fig1",
			"zeta-exponent",
			"fig5-uniform", "fig5-geometric", "fig5-poisson", "fig5-zeta",
			"rounds-cr", "rounds-er", "rounds-const",
			"procs", "profile",
			"lb-equal", "lb-smallest",
			"dominance",
			"serve-stress",
		}
	}
	for _, name := range names {
		fmt.Printf("\n######## experiment: %s ########\n", name)
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "ecs-experiments:", err)
			os.Exit(1)
		}
	}
}

// scaledSizes picks a geometric size ladder for the round experiments,
// shrunk by scale.
func scaledSizes(scale int) []int {
	base := []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	out := make([]int, 0, len(base))
	for _, b := range base {
		s := b / scale
		if s < 16 {
			s = 16
		}
		out = append(out, s)
	}
	return out
}

// divisorsUpTo lists divisors f of n with 2 ≤ f ≤ cap, for the equal-size
// sweep.
func divisorsUpTo(n, cap int) []int {
	var out []int
	for f := 2; f <= cap && f <= n/2; f++ {
		if n%f == 0 {
			out = append(out, f)
		}
	}
	return out
}
