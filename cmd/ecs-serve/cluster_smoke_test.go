package main

import (
	"bytes"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// TestClusterSmoke is the end-to-end multi-node smoke CI runs: it builds
// the real ecs-serve binary, boots a coordinator in front of two TCP
// backend nodes, drives the full PUT/POST/GET/DELETE surface through
// the coordinator, and asserts the classes are bit-identical to a
// single-node control run of the same workload. It then SIGKILLs one
// node and checks the coordinator degrades only that node's collections
// (503 + Retry-After) while the rest keep serving. Gated by
// ECSORT_CLUSTER_SMOKE=1 because it builds a binary and binds four TCP
// ports.
func TestClusterSmoke(t *testing.T) {
	if os.Getenv("ECSORT_CLUSTER_SMOKE") != "1" {
		t.Skip("set ECSORT_CLUSTER_SMOKE=1 to run the multi-node cluster smoke")
	}
	bin := filepath.Join(t.TempDir(), "ecs-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build ecs-serve: %v\n%s", err, out)
	}

	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start ecs-serve %v: %v", args, err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		})
		return cmd
	}

	// Two backend nodes, wire + HTTP each, then the coordinator. Node 2
	// is durable (fsync always) because the test kills and restarts it:
	// recovery must bring its collections back for re-admission.
	wire1, wire2 := pickAddr(t), pickAddr(t)
	node1HTTP, node2HTTP := pickAddr(t), pickAddr(t)
	dir2 := filepath.Join(t.TempDir(), "node2-data")
	node2 := func() *exec.Cmd {
		return start("-addr", node2HTTP, "-cluster-node", wire2, "-shards", "2", "-batch", "4",
			"-data-dir", dir2, "-fsync", "always")
	}
	start("-addr", node1HTTP, "-cluster-node", wire1, "-shards", "2", "-batch", "4")
	n2 := node2()
	waitHealthy(t, "http://"+node1HTTP)
	waitHealthy(t, "http://"+node2HTTP)

	coordHTTP := pickAddr(t)
	start("-addr", coordHTTP, "-cluster-coordinator", "-join", wire1+","+wire2, "-down-cooldown", "500ms")
	coord := "http://" + coordHTTP
	waitHealthy(t, coord)

	// The single-node control arm for bit-identity.
	controlHTTP := pickAddr(t)
	start("-addr", controlHTTP, "-shards", "2", "-batch", "4")
	control := "http://" + controlHTTP
	waitHealthy(t, control)

	// Same deterministic workload through both arms: several collections
	// (so both nodes own some), batched ingest, churn, then classes.
	spec := `{"kind":"label","labels":[0,1,0,1,2,2,0,1,3,3]}`
	keys := []string{"smoke-a", "smoke-b", "smoke-c", "smoke-d"}
	for _, base := range []string{coord, control} {
		for _, key := range keys {
			put(t, base+"/v1/collections/"+key, spec)
			post(t, base+"/v1/collections/"+key+"/items", `{"items":[0,1,2,3]}`)
			post(t, base+"/v1/collections/"+key+"/items?flush=1", `{"items":[4,5,6,7,8,9]}`)
			del(t, base+"/v1/collections/"+key+"/items/9")
			post(t, base+"/v1/collections/"+key+"/classes/0/invalidate?flush=1", "")
		}
	}
	for _, key := range keys {
		want := getJSON(t, control+"/v1/collections/"+key+"/classes?fresh=1")
		got := getJSON(t, coord+"/v1/collections/"+key+"/classes?fresh=1")
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: coordinator classes diverged from single-node control:\n got %v\nwant %v", key, got, want)
		}
	}

	// Fleet-wide listing and readiness through the coordinator.
	if n := len(getJSON(t, coord+"/v1/collections")["collections"].([]any)); n != len(keys) {
		t.Errorf("coordinator lists %d collections, want %d", n, len(keys))
	}

	// Find one key on each node (nodes report their own collections).
	ownedBy2 := map[string]bool{}
	if cols, ok := getJSON(t, "http://"+node2HTTP+"/v1/collections")["collections"].([]any); ok {
		for _, c := range cols {
			ownedBy2[c.(map[string]any)["key"].(string)] = true
		}
	}
	var on1, on2 string
	for _, key := range keys {
		if ownedBy2[key] {
			on2 = key
		} else {
			on1 = key
		}
	}
	if on1 == "" || on2 == "" {
		t.Fatalf("collections did not spread across both nodes (node2 owns %v)", ownedBy2)
	}

	// Kill node 2: its collections 503 with Retry-After, node 1's keep
	// serving, and readiness reports the degraded fleet.
	n2.Process.Signal(syscall.SIGKILL)
	n2.Wait()

	res, err := http.Post(coord+"/v1/collections/"+on2+"/items", "application/json",
		bytes.NewReader([]byte(`{"items":[9]}`)))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 503 {
		t.Errorf("write to dead node's collection: status %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("dead-node 503 carries no Retry-After")
	}
	post(t, coord+"/v1/collections/"+on1+"/items?flush=1", `{"items":[9]}`)
	if _, err := http.Get(coord + "/v1/collections/" + on1 + "/classes"); err != nil {
		t.Errorf("surviving node's collection unreadable: %v", err)
	}
	res, err = http.Get(coord + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 503 {
		t.Errorf("readiness with a dead node: status %d, want 503", res.StatusCode)
	}

	// The node comes back; after the down cooldown the coordinator routes
	// to it again.
	node2()
	waitHealthy(t, "http://"+node2HTTP)
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := http.Get(coord + "/v1/collections/" + on2 + "/classes")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator did not re-admit the restarted node within 10s")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func del(t *testing.T, url string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	doOK(t, req)
}
