// Command ecs-serve runs the equivalence class sorting classification
// service: a long-running HTTP/JSON server where each collection owns an
// incremental sorter over a pluggable equivalence oracle, collections
// are sharded across single-writer goroutines, batched inserts are
// folded with one compounding round per flush, and reads are served from
// copy-on-flush snapshots.
//
// Usage:
//
//	ecs-serve -addr :8080 -shards 16 -batch 128 -flush-interval 250ms
//
// With -data-dir the service is durable: accepted operations are
// write-ahead logged per shard, checkpoints bound replay work, and a
// restart (clean or crashed) rebuilds every collection bit-identically:
//
//	ecs-serve -data-dir /var/lib/ecsort -fsync interval -checkpoint-interval 30s
//
// Collections tolerate churn (deletes, class invalidation) and
// unreliable oracles: specs may declare fault-injection and resilience
// profiles (timeouts, retries, majority voting, a circuit breaker that
// degrades the collection to read-only), and a background self-repair
// daemon re-verifies sampled element pairs against each collection's
// oracle, withdrawing and re-folding divergent classes:
//
//	ecs-serve -repair-interval 5s -repair-samples 64 -repair-dist zeta
//
// Then, over HTTP:
//
//	curl -X PUT  localhost:8080/v1/collections/demo -d '{"kind":"label","labels":[0,1,0,1,2]}'
//	curl -X PUT  localhost:8080/v1/collections/er -d '{"kind":"label","labels":[0,1,0,1,2],"algorithm":"er"}'
//	curl -X POST localhost:8080/v1/collections/demo/items -d '{"items":[0,1,2,3,4]}'
//	curl -X DELETE localhost:8080/v1/collections/demo/items/3
//	curl -X POST 'localhost:8080/v1/collections/demo/classes/0/invalidate?flush=1'
//	curl localhost:8080/v1/collections/demo/classes?fresh=1
//	curl localhost:8080/healthz/ready
//	curl localhost:8080/v1/collections/demo/classes/3
//	curl localhost:8080/v1/collections/demo/stats
//	curl localhost:8080/v1/algorithms
//	curl localhost:8080/metrics
//
// Each collection may pin its own sorting regimen via the PUT body's
// "algorithm" field (default: the incremental compounding engine);
// GET /v1/algorithms lists the registry with hint requirements.
//
// The same binary scales past one machine. A backend node serves the
// cluster wire protocol next to its HTTP API; a coordinator owns no
// collections and routes every request to the nodes it joined:
//
//	ecs-serve -addr :8081 -cluster-node :9091 -data-dir /var/lib/ecsort-1
//	ecs-serve -addr :8082 -cluster-node :9092 -data-dir /var/lib/ecsort-2
//	ecs-serve -addr :8080 -cluster-coordinator -join localhost:9091,localhost:9092
//
// Clients talk to the coordinator exactly as they would a single
// server; see docs/ARCHITECTURE.md for placement and failure semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecsort/internal/cluster"
	"ecsort/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		shards        = flag.Int("shards", 8, "number of single-writer shards collections are hashed across")
		batch         = flag.Int("batch", 0, "pending-element flush threshold (0: flush after every ingest call)")
		flushInterval = flag.Duration("flush-interval", 0, "max snapshot staleness when -batch > 0 (0: no timer)")
		processors    = flag.Int("processors", 0, "comparisons per physical round in each session (0: n, the paper's setting)")
		workers       = flag.Int("workers", 0, "width of the service-wide execution pool shared by all collections (0: GOMAXPROCS)")
		dataDir       = flag.String("data-dir", "", "durable data directory: per-shard WALs + checkpoints, replayed on boot (empty: memory-only)")
		fsync         = flag.String("fsync", "", "WAL fsync policy: always, interval, or never (default interval; see docs/PERSISTENCE.md)")
		fsyncInterval = flag.Duration("fsync-interval", 0, "max unsynced-WAL window under -fsync interval (0: 100ms)")
		checkpointInt = flag.Duration("checkpoint-interval", 0, "periodic per-shard checkpoint+WAL-truncation (0: only on shutdown)")
		maxSegBytes   = flag.Int64("max-segment-bytes", 0, "rotate a shard's WAL segment when it exceeds this size (0: never)")
		repairInt     = flag.Duration("repair-interval", 0, "background self-repair sweep interval (0: daemon off; see docs/REPAIR.md)")
		repairSamples = flag.Int("repair-samples", 0, "element pairs re-verified per collection per sweep (0: 32)")
		repairDist    = flag.String("repair-dist", "", "repair sampling distribution: uniform, geometric, poisson, or zeta (default uniform)")
		repairParam   = flag.Float64("repair-dist-param", 0, "distribution parameter: p (geometric), lambda (poisson), s (zeta); 0: sampler default")
		repairSeed    = flag.Int64("repair-seed", 0, "seed for the repair sampling stream")
		clusterNode   = flag.String("cluster-node", "", "also answer the cluster wire protocol on this TCP address (backend-node mode)")
		clusterCoord  = flag.Bool("cluster-coordinator", false, "run as a cluster coordinator: no local collections, requests route to the -join nodes")
		join          = flag.String("join", "", "comma-separated backend wire addresses the coordinator routes across (with -cluster-coordinator)")
		downCooldown  = flag.Duration("down-cooldown", 0, "how long an unreachable node's collections reject with 503 before the next probe (0: 3s)")
	)
	flag.Parse()
	if *workers < 0 {
		log.Fatalf("ecs-serve: -workers must be >= 0, got %d", *workers)
	}
	if *clusterCoord {
		if *clusterNode != "" {
			log.Fatalf("ecs-serve: -cluster-coordinator and -cluster-node are mutually exclusive (a coordinator owns no collections)")
		}
		runCoordinator(*addr, *join, *downCooldown)
		return
	}
	if *join != "" {
		log.Fatalf("ecs-serve: -join requires -cluster-coordinator")
	}

	svc, err := service.Open(service.Config{
		Shards:             *shards,
		BatchSize:          *batch,
		FlushInterval:      *flushInterval,
		Processors:         *processors,
		Workers:            *workers,
		DataDir:            *dataDir,
		Fsync:              *fsync,
		FsyncInterval:      *fsyncInterval,
		CheckpointInterval: *checkpointInt,
		MaxSegmentBytes:    *maxSegBytes,
		Repair: service.RepairConfig{
			Interval: *repairInt,
			Samples:  *repairSamples,
			Dist:     *repairDist,
			Param:    *repairParam,
			Seed:     *repairSeed,
		},
	})
	if err != nil {
		log.Fatalf("ecs-serve: %v", err)
	}
	defer svc.Close()
	if rec := svc.Recovery(); rec.Durable {
		log.Printf("ecs-serve: recovered %s: %d collection(s) from checkpoints, %d WAL record(s) over %d segment(s), %d torn tail(s) truncated, in %s",
			*dataDir, rec.Collections, rec.Records, rec.Segments, rec.TornTails, rec.Duration.Round(time.Microsecond))
	}

	// Backend-node mode: answer the cluster wire protocol next to the
	// HTTP API (the node's own /metrics and /healthz stay scrapeable).
	if *clusterNode != "" {
		node := cluster.NewNode(svc)
		l, err := net.Listen("tcp", *clusterNode)
		if err != nil {
			log.Fatalf("ecs-serve: cluster-node listen: %v", err)
		}
		defer l.Close()
		go func() {
			if err := node.ServeTCP(l); err != nil {
				log.Printf("ecs-serve: cluster-node: %v", err)
			}
		}()
		log.Printf("ecs-serve: cluster node answering wire protocol on %s", l.Addr())
	}

	serveHTTP(*addr, svc.Handler(),
		fmt.Sprintf("listening on %s (%d shards, batch %d)", *addr, *shards, *batch))
}

// runCoordinator is the -cluster-coordinator main: assemble TCP
// transports to every joined node, discover what they own, and serve
// the coordinator's HTTP API until shutdown.
func runCoordinator(addr, join string, downCooldown time.Duration) {
	var backends []cluster.Backend
	for _, nodeAddr := range strings.Split(join, ",") {
		nodeAddr = strings.TrimSpace(nodeAddr)
		if nodeAddr == "" {
			continue
		}
		backends = append(backends, cluster.Backend{
			Name:      nodeAddr,
			Transport: cluster.NewTCPTransport(nodeAddr),
		})
	}
	if len(backends) == 0 {
		log.Fatalf("ecs-serve: -cluster-coordinator needs -join with at least one node address")
	}
	co, err := cluster.New(cluster.Config{DownCooldown: downCooldown}, backends)
	if err != nil {
		log.Fatalf("ecs-serve: %v", err)
	}
	defer co.Close()
	serveHTTP(addr, co.Handler(),
		fmt.Sprintf("coordinator listening on %s, routing across %d node(s): %s",
			addr, len(backends), strings.Join(co.Nodes(), ", ")))
}

// serveHTTP runs one HTTP server until SIGINT/SIGTERM, draining
// connections before returning (and so before deferred service/
// coordinator closes run).
func serveHTTP(addr string, handler http.Handler, banner string) {
	server := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	log.Printf("ecs-serve: %s", banner)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ecs-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("ecs-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			log.Printf("ecs-serve: shutdown: %v", err)
		}
	}
}
