// Command ecs-serve runs the equivalence class sorting classification
// service: a long-running HTTP/JSON server where each collection owns an
// incremental sorter over a pluggable equivalence oracle, collections
// are sharded across single-writer goroutines, batched inserts are
// folded with one compounding round per flush, and reads are served from
// copy-on-flush snapshots.
//
// Usage:
//
//	ecs-serve -addr :8080 -shards 16 -batch 128 -flush-interval 250ms
//
// With -data-dir the service is durable: accepted operations are
// write-ahead logged per shard, checkpoints bound replay work, and a
// restart (clean or crashed) rebuilds every collection bit-identically:
//
//	ecs-serve -data-dir /var/lib/ecsort -fsync interval -checkpoint-interval 30s
//
// Collections tolerate churn (deletes, class invalidation) and
// unreliable oracles: specs may declare fault-injection and resilience
// profiles (timeouts, retries, majority voting, a circuit breaker that
// degrades the collection to read-only), and a background self-repair
// daemon re-verifies sampled element pairs against each collection's
// oracle, withdrawing and re-folding divergent classes:
//
//	ecs-serve -repair-interval 5s -repair-samples 64 -repair-dist zeta
//
// Then, over HTTP:
//
//	curl -X PUT  localhost:8080/v1/collections/demo -d '{"kind":"label","labels":[0,1,0,1,2]}'
//	curl -X PUT  localhost:8080/v1/collections/er -d '{"kind":"label","labels":[0,1,0,1,2],"algorithm":"er"}'
//	curl -X POST localhost:8080/v1/collections/demo/items -d '{"items":[0,1,2,3,4]}'
//	curl -X DELETE localhost:8080/v1/collections/demo/items/3
//	curl -X POST 'localhost:8080/v1/collections/demo/classes/0/invalidate?flush=1'
//	curl localhost:8080/v1/collections/demo/classes?fresh=1
//	curl localhost:8080/healthz/ready
//	curl localhost:8080/v1/collections/demo/classes/3
//	curl localhost:8080/v1/collections/demo/stats
//	curl localhost:8080/v1/algorithms
//	curl localhost:8080/metrics
//
// Each collection may pin its own sorting regimen via the PUT body's
// "algorithm" field (default: the incremental compounding engine);
// GET /v1/algorithms lists the registry with hint requirements.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecsort/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		shards        = flag.Int("shards", 8, "number of single-writer shards collections are hashed across")
		batch         = flag.Int("batch", 0, "pending-element flush threshold (0: flush after every ingest call)")
		flushInterval = flag.Duration("flush-interval", 0, "max snapshot staleness when -batch > 0 (0: no timer)")
		processors    = flag.Int("processors", 0, "comparisons per physical round in each session (0: n, the paper's setting)")
		workers       = flag.Int("workers", 0, "width of the service-wide execution pool shared by all collections (0: GOMAXPROCS)")
		dataDir       = flag.String("data-dir", "", "durable data directory: per-shard WALs + checkpoints, replayed on boot (empty: memory-only)")
		fsync         = flag.String("fsync", "", "WAL fsync policy: always, interval, or never (default interval; see docs/PERSISTENCE.md)")
		fsyncInterval = flag.Duration("fsync-interval", 0, "max unsynced-WAL window under -fsync interval (0: 100ms)")
		checkpointInt = flag.Duration("checkpoint-interval", 0, "periodic per-shard checkpoint+WAL-truncation (0: only on shutdown)")
		maxSegBytes   = flag.Int64("max-segment-bytes", 0, "rotate a shard's WAL segment when it exceeds this size (0: never)")
		repairInt     = flag.Duration("repair-interval", 0, "background self-repair sweep interval (0: daemon off; see docs/REPAIR.md)")
		repairSamples = flag.Int("repair-samples", 0, "element pairs re-verified per collection per sweep (0: 32)")
		repairDist    = flag.String("repair-dist", "", "repair sampling distribution: uniform, geometric, poisson, or zeta (default uniform)")
		repairParam   = flag.Float64("repair-dist-param", 0, "distribution parameter: p (geometric), lambda (poisson), s (zeta); 0: sampler default")
		repairSeed    = flag.Int64("repair-seed", 0, "seed for the repair sampling stream")
	)
	flag.Parse()
	if *workers < 0 {
		log.Fatalf("ecs-serve: -workers must be >= 0, got %d", *workers)
	}

	svc, err := service.Open(service.Config{
		Shards:             *shards,
		BatchSize:          *batch,
		FlushInterval:      *flushInterval,
		Processors:         *processors,
		Workers:            *workers,
		DataDir:            *dataDir,
		Fsync:              *fsync,
		FsyncInterval:      *fsyncInterval,
		CheckpointInterval: *checkpointInt,
		MaxSegmentBytes:    *maxSegBytes,
		Repair: service.RepairConfig{
			Interval: *repairInt,
			Samples:  *repairSamples,
			Dist:     *repairDist,
			Param:    *repairParam,
			Seed:     *repairSeed,
		},
	})
	if err != nil {
		log.Fatalf("ecs-serve: %v", err)
	}
	defer svc.Close()
	if rec := svc.Recovery(); rec.Durable {
		log.Printf("ecs-serve: recovered %s: %d collection(s) from checkpoints, %d WAL record(s) over %d segment(s), %d torn tail(s) truncated, in %s",
			*dataDir, rec.Collections, rec.Records, rec.Segments, rec.TornTails, rec.Duration.Round(time.Microsecond))
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain connections before closing
	// the shard goroutines.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	log.Printf("ecs-serve: listening on %s (%d shards, batch %d)", *addr, *shards, *batch)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ecs-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("ecs-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			log.Printf("ecs-serve: shutdown: %v", err)
		}
	}
}
