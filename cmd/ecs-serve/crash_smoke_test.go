package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoverySmoke is the end-to-end durability smoke CI runs: it
// builds the real ecs-serve binary, ingests over HTTP, SIGKILLs the
// process mid-flight, restarts it on the same data directory, and
// asserts the recovered classes and stats fingerprints are bit-identical
// to the pre-kill state. Gated by ECSORT_CRASH_SMOKE=1 because it builds
// a binary and binds a TCP port.
func TestCrashRecoverySmoke(t *testing.T) {
	if os.Getenv("ECSORT_CRASH_SMOKE") != "1" {
		t.Skip("set ECSORT_CRASH_SMOKE=1 to run the SIGKILL recovery smoke")
	}
	bin := filepath.Join(t.TempDir(), "ecs-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build ecs-serve: %v\n%s", err, out)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := pickAddr(t)
	base := "http://" + addr

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-fsync", "always", "-shards", "4")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start ecs-serve: %v", err)
		}
		waitHealthy(t, base)
		return cmd
	}

	cmd := start()
	defer cmd.Process.Kill()

	put(t, base+"/v1/collections/smoke", `{"kind":"label","labels":[0,1,0,1,2,2,0,1]}`)
	post(t, base+"/v1/collections/smoke/items", `{"items":[0,1,2,3]}`)
	post(t, base+"/v1/collections/smoke/items?flush=1", `{"items":[4,5]}`)
	post(t, base+"/v1/collections/smoke/items", `{"items":[6]}`) // left pending at kill time
	want := getJSON(t, base+"/v1/collections/smoke/classes?fresh=1")

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait()

	cmd = start()
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	got := getJSON(t, base+"/v1/collections/smoke/classes?fresh=1")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("classes after SIGKILL recovery diverged:\n got %v\nwant %v", got, want)
	}
}

func pickAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(base + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == 200 {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("ecs-serve did not become healthy within 10s")
}

func put(t *testing.T, url, body string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	doOK(t, req)
}

func post(t *testing.T, url, body string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	doOK(t, req)
}

func doOK(t *testing.T, req *http.Request) {
	t.Helper()
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", req.Method, req.URL, err)
	}
	defer res.Body.Close()
	if res.StatusCode >= 300 {
		var buf bytes.Buffer
		buf.ReadFrom(res.Body)
		t.Fatalf("%s %s: status %d: %s", req.Method, req.URL, res.StatusCode, buf.String())
	}
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, res.StatusCode)
	}
	var v map[string]any
	if err := json.NewDecoder(res.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return v
}
