// Command ecs-vet runs the project-invariant static analyzer suite of
// internal/analysis over a module tree, printing findings in the
// file:line:col convention and exiting non-zero when any survive.
//
// Usage:
//
//	ecs-vet [-run analyzer,analyzer] [-list] [dir | ./...]
//
// The argument names the module root; "./..." (the go-tool idiom) and
// "." both mean the module in the current directory — the suite always
// analyzes the whole module. Exit status is 0 for a clean tree, 1 when
// findings exist, and 2 when the module itself fails to load or
// type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ecsort/internal/analysis"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ecs-vet [-run analyzer,analyzer] [-list] [dir | ./...]\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		dir = args[0]
		// The go-tool "./..." spelling means "this module"; the suite is
		// always whole-module, so strip the pattern down to the root.
		dir = strings.TrimSuffix(dir, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	analyzers, err := analysis.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecs-vet:", err)
		os.Exit(2)
	}
	findings, err := analysis.Vet(dir, analyzers...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecs-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ecs-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
