// Command ecs-figure1 prints the Figure 1 table of the paper for a given
// n and k: iteration by iteration, how the two-phase CR algorithm merges
// answers, how many processors each answer owns, and how many physical
// rounds each iteration costs.
//
// Usage:
//
//	ecs-figure1 -n 1048576 -k 8
package main

import (
	"flag"
	"fmt"
	"os"

	"ecsort/internal/harness"
)

func main() {
	var (
		n = flag.Int("n", 1<<20, "number of elements")
		k = flag.Int("k", 8, "number of equivalence classes")
	)
	flag.Parse()
	if *n < 1 || *k < 1 {
		fmt.Fprintln(os.Stderr, "ecs-figure1: n and k must be positive")
		os.Exit(1)
	}
	rows := harness.Figure1Schedule(*n, *k)
	if err := harness.RenderFigure1(os.Stdout, *n, *k, rows); err != nil {
		fmt.Fprintln(os.Stderr, "ecs-figure1:", err)
		os.Exit(1)
	}
}
