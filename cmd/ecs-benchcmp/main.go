// Command ecs-benchcmp compares `go test -bench` output against the
// repo's tracked baseline (BENCH_baseline.json) and emits a markdown
// table, so every CI run shows the perf trajectory of the flush/merge
// hot path as a build artifact.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | tee bench.txt
//	go run ./cmd/ecs-benchcmp -baseline BENCH_baseline.json bench.txt [more.txt...]
//
// By default the tool is informational and always exits 0: one-shot CI
// bench runs are too noisy for ns/op gating. Pass -max-alloc-regress to
// fail when any benchmark's allocs/op (which is deterministic) exceeds
// its baseline by more than the given factor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type entry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type baseline struct {
	Note       string           `json:"note"`
	Recorded   string           `json:"recorded"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "tracked baseline JSON")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0,
		"fail when allocs/op exceeds baseline by more than this factor (0 = never fail)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ecs-benchcmp [-baseline file] bench-output.txt...")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}

	current := map[string]entry{}
	var order []string
	for _, path := range flag.Args() {
		if err := parseBenchFile(path, current, &order); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("## Benchmark comparison vs baseline (%s)\n\n", base.Recorded)
	fmt.Println("| benchmark | ns/op | baseline ns/op | Δ ns/op | allocs/op | baseline allocs/op | Δ allocs/op |")
	fmt.Println("|---|---:|---:|---:|---:|---:|---:|")
	for _, name := range order {
		cur := current[name]
		b, tracked := base.Benchmarks[name]
		if !tracked {
			fmt.Printf("| %s | %s | — | (untracked) | %s | — | (untracked) |\n",
				name, fmtNum(cur.NsOp), fmtNum(cur.AllocsOp))
			continue
		}
		fmt.Printf("| %s | %s | %s | %s | %s | %s | %s |\n",
			name,
			fmtNum(cur.NsOp), fmtNum(b.NsOp), delta(cur.NsOp, b.NsOp),
			fmtNum(cur.AllocsOp), fmtNum(b.AllocsOp), delta(cur.AllocsOp, b.AllocsOp))
	}
	for name := range base.Benchmarks {
		if _, ok := current[name]; !ok {
			fmt.Printf("| %s | (not run) | %s | — | (not run) | %s | — |\n",
				name, fmtNum(base.Benchmarks[name].NsOp), fmtNum(base.Benchmarks[name].AllocsOp))
		}
	}
	fmt.Println()
	fmt.Println("ns/op on shared CI runners is indicative only; allocs/op is deterministic.")

	if *maxAllocRegress > 0 {
		failed := false
		for _, name := range order {
			cur, b := current[name], base.Benchmarks[name]
			if b.AllocsOp > 0 && cur.AllocsOp > b.AllocsOp*(*maxAllocRegress) {
				fmt.Fprintf(os.Stderr, "FAIL: %s allocs/op %.0f > %.1f x baseline %.0f\n",
					name, cur.AllocsOp, *maxAllocRegress, b.AllocsOp)
				failed = true
			}
		}
		// A tracked benchmark that silently stopped running (renamed, or
		// a CI -bench regex typo) would otherwise disable its gate.
		for name := range base.Benchmarks {
			if _, ok := current[name]; !ok {
				fmt.Fprintf(os.Stderr, "FAIL: tracked benchmark %s missing from the run (renamed? -bench regex?)\n", name)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

// parseBenchFile extracts "BenchmarkX  N  v ns/op [v B/op] [v allocs/op]"
// lines, normalizing away the -GOMAXPROCS suffix.
func parseBenchFile(path string, out map[string]entry, order *[]string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := normalizeName(fields[0])
		var e entry
		// Walk (value, unit) pairs after the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsOp = v
			case "allocs/op":
				e.AllocsOp = v
			}
		}
		if e.NsOp == 0 {
			continue
		}
		if _, seen := out[name]; !seen {
			*order = append(*order, name)
		}
		out[name] = e
	}
	return sc.Err()
}

// normalizeName strips the trailing -N GOMAXPROCS suffix go test appends
// on multi-core machines, so names match the baseline keys everywhere.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

func delta(cur, base float64) string {
	if base == 0 {
		return "—"
	}
	d := (cur - base) / base * 100
	return fmt.Sprintf("%+.1f%%", d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecs-benchcmp:", err)
	os.Exit(1)
}
