// Distribution-based analysis (Section 4): sample class assignments from
// the paper's four distributions, sort with the round-robin regimen, and
// check the Theorem 7 bound pathwise — comparisons never exceed
// 2·Σ V̂ᵢ (+ n−1 within-class merges), where V̂ᵢ is element i's class
// index capped at n.
//
//	go run ./examples/distributions
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ecsort"
)

func main() {
	const n = 5000
	rng := rand.New(rand.NewSource(1605)) // arXiv month of the paper

	dists := []ecsort.Distribution{
		ecsort.NewUniform(10),
		ecsort.NewUniform(100),
		ecsort.NewGeometric(1.0 / 10),
		ecsort.NewPoisson(5),
		ecsort.NewZeta(2.5),
		ecsort.NewZeta(1.5),
	}

	fmt.Printf("round-robin ECS on n=%d elements per distribution\n\n", n)
	fmt.Printf("%-20s %12s %14s %8s %18s\n",
		"distribution", "comparisons", "Thm 7 bound", "ratio", "2·n·E[D_N] (mean)")

	for _, d := range dists {
		labels := ecsort.SampleLabels(d, n, rng)
		res, err := ecsort.SortRoundRobin(ecsort.NewLabelOracle(labels), ecsort.Config{})
		if err != nil {
			log.Fatal(err)
		}
		var bound int64
		for _, l := range labels {
			v := l
			if v > n {
				v = n
			}
			bound += int64(v)
		}
		bound = 2*bound + int64(n-1)
		if res.Stats.Comparisons > bound {
			log.Fatalf("%s: Theorem 7 violated: %d > %d", d.Name(), res.Stats.Comparisons, bound)
		}
		mean := "diverges"
		if m := d.Mean(); !math.IsInf(m, 1) {
			mean = fmt.Sprintf("%.0f", 2*float64(n)*m)
		}
		fmt.Printf("%-20s %12d %14d %8.2f %18s\n",
			d.Name(), res.Stats.Comparisons, bound,
			float64(res.Stats.Comparisons)/float64(bound), mean)
	}

	fmt.Println("\nTheorems 8–9: the finite-mean distributions cost O(n) comparisons;")
	fmt.Println("zeta with s ≤ 2 has divergent mean and visibly heavier cost — the")
	fmt.Println("regime the paper leaves open.")
}
