// Lower bounds live: run the same sorting algorithm against (a) a benign
// random input and (b) the paper's Section 3 adversary, sweeping the
// class size f. Both costs scale as Θ(n²/f) — that is exactly Theorem 5's
// point: the adversary certifies that no algorithm can beat that shape,
// because it answers queries online while maintaining a weighted
// equitable coloring and commits to classes as late as possible.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecsort"
)

func main() {
	const n = 512
	fmt.Printf("sorting n=%d elements with the round-robin algorithm\n\n", n)
	fmt.Printf("%6s %22s %22s %14s\n", "f", "random input (comps)", "vs adversary (comps)", "forced C·f/n²")

	for _, f := range []int{2, 4, 8, 16, 32} {
		// (a) A benign random input with n/f classes of size f.
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % (n / f)
		}
		rng := rand.New(rand.NewSource(int64(f)))
		rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
		benign, err := ecsort.SortRoundRobin(ecsort.NewLabelOracle(labels), ecsort.Config{})
		if err != nil {
			log.Fatal(err)
		}

		// (b) The Theorem 5 adversary with the same class-size profile.
		adv := ecsort.NewEqualSizeAdversary(n, f)
		forced, err := ecsort.SortRoundRobin(adv, ecsort.Config{Workers: 1})
		if err != nil {
			log.Fatal(err)
		}
		if err := adv.Audit(); err != nil {
			log.Fatalf("adversary inconsistent: %v", err)
		}
		norm := float64(forced.Stats.Comparisons) * float64(f) / float64(n) / float64(n)
		fmt.Printf("%6d %22d %22d %14.3f\n",
			f, benign.Stats.Comparisons, forced.Stats.Comparisons, norm)
	}

	fmt.Println("\nThe last column hovers near a constant: the adversary forces")
	fmt.Println("Θ(n²/f) comparisons (Theorem 5), improving the older Ω(n²/f²) bound.")

	// Theorem 6: how long can the smallest class stay hidden?
	fmt.Printf("\nsmallest-class adversary (n=%d): comparisons before any algorithm\n", n)
	fmt.Println("could correctly name a smallest-class member:")
	for _, l := range []int{4, 16, 64} {
		adv := ecsort.NewSmallestClassAdversary(n, l)
		if _, err := ecsort.SortRoundRobin(adv, ecsort.Config{Workers: 1}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ℓ=%3d: %7d comparisons (C·ℓ/n² = %.3f)\n",
			l, adv.FirstSCCMark(),
			float64(adv.FirstSCCMark())*float64(l)/float64(n)/float64(n))
	}
}
