// Quickstart for the v2 API: sort 1,000 elements drawn from 8 hidden
// classes with every regimen in the registry as a first-class Algorithm
// value, let Auto plan one from workload hints, and classify a typed
// slice with the generic front end — comparing costs in Valiant's
// parallel comparison model throughout.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ecsort"
)

func main() {
	const n, k = 1000, 8
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()

	// Hidden ground truth: each element gets one of k classes uniformly.
	labels := ecsort.SampleLabels(ecsort.NewUniform(k), n, rng)
	oracle := ecsort.NewLabelOracle(labels)

	fmt.Printf("equivalence class sorting: n=%d elements, k=%d hidden classes\n\n", n, k)
	fmt.Printf("%-22s %12s %8s %12s\n", "algorithm", "comparisons", "rounds", "widest round")

	show := func(res ecsort.Result, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if !ecsort.SameClassification(res.Labels(n), labels) {
			log.Fatalf("%s: wrong classification", res.Algorithm)
		}
		fmt.Printf("%-22s %12d %8d %12d\n",
			res.Algorithm, res.Stats.Comparisons, res.Stats.Rounds, res.Stats.MaxRoundSize)
	}

	// Algorithms are values: build once, pass anywhere, sort through a
	// context (cancellation is checked between parallel rounds).
	for _, alg := range []ecsort.Algorithm{
		ecsort.CR(k),        // Theorem 1: O(k + log log n) rounds, CR model
		ecsort.CRUnknownK(), // Theorem 1 without knowing k
		ecsort.ER(),         // Theorem 2: O(k log n) rounds, ER model
		ecsort.ConstRoundER(ecsort.ConstRoundOptions{ // Theorem 4: O(1) rounds for ℓ ≥ λn
			Lambda: 0.1, D: 10, MaxRetries: 5, Seed: 7,
		}),
		ecsort.RoundRobin(), // the sequential Section 4 analysis subject
		ecsort.Naive(),      // the sequential baseline
	} {
		show(ecsort.Sort(ctx, oracle, alg, ecsort.Config{}))
	}

	// Auto plans the cheapest applicable regimen from workload hints
	// and records its choice in Result.Algorithm.
	res, err := ecsort.Sort(ctx, oracle, ecsort.Auto(ecsort.Hints{Lambda: 0.1, Seed: 7}), ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAuto(Hints{Lambda: 0.1}) planned %q\n", res.Algorithm)

	// Or dispatch by registry name — the same path the CLIs and the
	// classification service use.
	alg, err := ecsort.AlgorithmByName("er", ecsort.Hints{})
	if err != nil {
		log.Fatal(err)
	}
	res, err = ecsort.Sort(ctx, oracle, alg, ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AlgorithmByName(\"er\") re-sorted in %d rounds\n", res.Stats.Rounds)

	// The typed generic front end: no hand-rolled index oracle.
	type sample struct{ cohort int }
	samples := make([]sample, 60)
	for i := range samples {
		samples[i] = sample{cohort: i % 3}
	}
	classes, err := ecsort.Classify(ctx, samples,
		func(a, b sample) bool { return a.cohort == b.cohort },
		ecsort.CRUnknownK(), ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Classify grouped %d samples into %d cohorts via %q\n",
		len(samples), classes.NumClasses(), classes.Algorithm)

	fmt.Println("\nAll regimens recovered the same hidden classes.")
	fmt.Println("Note the trade: CR spends the fewest rounds; the sequential")
	fmt.Println("baselines spend one round per comparison but fewer comparisons total.")
}
