// Quickstart: sort 1,000 elements drawn from 8 hidden classes with every
// algorithm in the library and compare their costs in Valiant's parallel
// comparison model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecsort"
)

func main() {
	const n, k = 1000, 8
	rng := rand.New(rand.NewSource(42))

	// Hidden ground truth: each element gets one of k classes uniformly.
	labels := ecsort.SampleLabels(ecsort.NewUniform(k), n, rng)
	oracle := ecsort.NewLabelOracle(labels)

	fmt.Printf("equivalence class sorting: n=%d elements, k=%d hidden classes\n\n", n, k)
	fmt.Printf("%-22s %12s %8s %12s\n", "algorithm", "comparisons", "rounds", "widest round")

	show := func(name string, res ecsort.Result, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if !ecsort.SameClassification(res.Labels(n), labels) {
			log.Fatalf("%s: wrong classification", name)
		}
		fmt.Printf("%-22s %12d %8d %12d\n",
			name, res.Stats.Comparisons, res.Stats.Rounds, res.Stats.MaxRoundSize)
	}

	// Theorem 1: O(k + log log n) rounds, concurrent-read model.
	res, err := ecsort.SortCR(oracle, k, ecsort.Config{})
	show("SortCR (Thm 1)", res, err)

	// Theorem 2: O(k log n) rounds, exclusive-read model.
	res, err = ecsort.SortER(oracle, ecsort.Config{})
	show("SortER (Thm 2)", res, err)

	// Theorem 4: O(1) rounds when every class has ≥ λn elements.
	// Uniform k=8 gives class sizes ≈ n/8, so λ = 0.1 is safe.
	res, err = ecsort.SortConstRoundER(oracle, ecsort.ConstRoundOptions{
		Lambda: 0.1, D: 10, MaxRetries: 5, Seed: 7,
	}, ecsort.Config{})
	show("SortConstRoundER (Thm 4)", res, err)

	// The sequential baselines of the distribution-based analysis.
	res, err = ecsort.SortRoundRobin(oracle, ecsort.Config{})
	show("SortRoundRobin [12]", res, err)
	res, err = ecsort.SortNaive(oracle, ecsort.Config{})
	show("SortNaive", res, err)

	fmt.Println("\nAll five algorithms recovered the same hidden classes.")
	fmt.Println("Note the trade: SortCR spends the fewest rounds; the sequential")
	fmt.Println("baselines spend one round per comparison but fewer comparisons total.")
}
