// Example service: run the sharded classification service in process
// with a durable data directory, ingest two collections — fault-diagnosis
// machines and secret-handshake interns — over real HTTP, read back
// classes, stats, and metrics, then restart the service on the same
// directory and show the collections recover bit-identically.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"ecsort"
)

func main() {
	// Durable config: per-shard write-ahead logs + checkpoints under
	// DataDir, replayed on boot (docs/PERSISTENCE.md has the format).
	// Fsync "never" keeps the example fast — a clean Close loses
	// nothing; production would pick "interval" or "always".
	dataDir, err := os.MkdirTemp("", "ecsort-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	cfg := ecsort.ServiceConfig{Shards: 4, BatchSize: 8, DataDir: dataDir, Fsync: "never"}

	svc, err := ecsort.OpenService(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Serve on an ephemeral localhost port, exactly as cmd/ecs-serve
	// would.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go server.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Collection 1: a machine fleet with hidden worm-infection states.
	must(request("PUT", base+"/v1/collections/fleet", ecsort.OracleSpec{
		Kind:   ecsort.OracleKindFault,
		States: []uint64{0b101, 0b101, 0b011, 0b000, 0b011, 0b101},
	}))

	// Collection 2: interns with secret group keys, every test a real
	// HMAC challenge–response over an agent network.
	must(request("PUT", base+"/v1/collections/interns", ecsort.OracleSpec{
		Kind:   ecsort.OracleKindHandshakeAgents,
		Labels: []int{0, 1, 1, 0, 2, 2, 0},
		Seed:   2016,
	}))

	// Machines and interns come online in batches.
	must(request("POST", base+"/v1/collections/fleet/items", map[string][]int{"items": {0, 1, 2}}))
	must(request("POST", base+"/v1/collections/fleet/items", map[string][]int{"items": {3, 4, 5}}))
	must(request("POST", base+"/v1/collections/interns/items", map[string][]int{"items": {0, 1, 2, 3, 4, 5, 6}}))

	for _, key := range []string{"fleet", "interns"} {
		fmt.Println(classesLine(base, key))
	}

	metrics := must(request("GET", base+"/metrics", nil))
	fmt.Printf("\nmetrics excerpt:\n")
	for _, line := range bytes.Split(metrics, []byte("\n")) {
		if len(line) > 0 && line[0] != '#' {
			fmt.Printf("  %s\n", line)
		}
	}

	// Restart: close the server and service (each shard checkpoints on
	// Close), then reopen the same data directory. Boot replays
	// checkpoint-then-tail and rebuilds both collections bit-identically
	// — same classes, same comparison/round stats.
	server.Close()
	svc.Close()
	svc, err = ecsort.OpenService(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	rec := svc.Recovery()
	fmt.Printf("\nafter restart: recovered %d collection(s) from checkpoints, %d WAL record(s), in %s\n",
		rec.Collections, rec.Records, rec.Duration.Round(time.Millisecond))

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server = &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go server.Serve(ln2)
	defer server.Close()
	base = "http://" + ln2.Addr().String()
	for _, key := range []string{"fleet", "interns"} {
		fmt.Println(classesLine(base, key))
	}
}

// classesLine fetches one collection's fresh classes and renders the
// summary line printed before and after the restart.
func classesLine(base, key string) string {
	body := must(request("GET", base+"/v1/collections/"+key+"/classes?fresh=1", nil))
	var snap ecsort.ServiceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		log.Fatal(err)
	}
	return fmt.Sprintf("%s: %d classes %v — %d comparisons in %d rounds",
		key, len(snap.Classes), snap.Classes, snap.Stats.Comparisons, snap.Stats.Rounds)
}

// request performs one JSON API call and returns the response body.
func request(method, url string, payload any) ([]byte, error) {
	var body io.Reader
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, out)
	}
	return out, nil
}

func must(b []byte, err error) []byte {
	if err != nil {
		log.Fatal(err)
	}
	return b
}
