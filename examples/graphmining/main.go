// Graph mining: classify a collection of graphs into isomorphism classes.
// Each equivalence test is a genuine graph-isomorphism check (WL color
// refinement plus backtracking) — "nontrivial but computationally
// feasible", as the paper puts it. Graphs are passive data, so one graph
// can take part in many comparisons per round: the concurrent-read model,
// and SortCR's O(k + log log n) rounds apply.
//
//	go run ./examples/graphmining
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecsort"
)

func main() {
	const collection = 300
	const vertices = 12
	const families = 6
	rng := rand.New(rand.NewSource(271828))

	// Build the corpus: six hidden base graphs, each element a randomly
	// relabeled copy of its family's base graph.
	membership := make([]int, collection)
	for i := range membership {
		membership[i] = rng.Intn(families)
	}
	corpus := ecsort.RandomGraphCollection(membership, vertices, rng)

	fmt.Printf("corpus of %d graphs on %d vertices, %d hidden isomorphism classes\n\n",
		collection, vertices, families)

	res, err := ecsort.SortCR(corpus, families, ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if !ecsort.SameClassification(res.Labels(collection), membership) {
		log.Fatal("isomorphism classes mis-identified")
	}

	fmt.Printf("SortCR: %d isomorphism tests in %d parallel rounds\n",
		res.Stats.Comparisons, res.Stats.Rounds)
	fmt.Printf("(all-pairs testing would need %d tests)\n\n", collection*(collection-1)/2)

	for i, group := range res.Canonical() {
		g := corpus.Graph(group[0])
		fmt.Printf("  class %d: %3d graphs, %2d edges each (e.g. graph #%d)\n",
			i, len(group), g.NumEdges(), group[0])
	}

	// Direct use of the isomorphism tester on a hard pair: C6 vs 2×K3
	// share degree sequences but are not isomorphic.
	c6 := ecsort.NewGraph(6)
	for i := 0; i < 6; i++ {
		c6.AddEdge(i, (i+1)%6)
	}
	twoTriangles := ecsort.NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		twoTriangles.AddEdge(e[0], e[1])
	}
	fmt.Printf("\nsanity: Isomorphic(C6, 2×K3) = %v (both 2-regular on 6 vertices)\n",
		ecsort.Isomorphic(c6, twoTriangles))
}
