// Secret handshakes: the paper's motivating story. Interns at a political
// convention each belong to one of several parties and will only reveal a
// shared affiliation through a pairwise secret handshake. Here the
// handshake is a real HMAC-SHA256 challenge–response run between two agent
// goroutines; a transcript reveals nothing but same-party/different-party.
//
// Because the agents perform the handshakes themselves, each agent can be
// in at most one handshake per round — the exclusive-read (ER) model — so
// we classify everyone with SortER (Theorem 2) and, since every party here
// is large, with the constant-round algorithm of Theorem 4.
//
//	go run ./examples/secrethandshake
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecsort"
)

func main() {
	const interns = 600
	parties := []string{"Republican", "Democrat", "Green", "Labor", "Libertarian"}
	rng := rand.New(rand.NewSource(1789))

	// Assign each intern a party, hidden inside the handshake keys.
	affiliation := make([]int, interns)
	for i := range affiliation {
		affiliation[i] = rng.Intn(len(parties))
	}
	agents := ecsort.NewHandshakeOracle(affiliation, 0xC0FFEE)

	fmt.Printf("%d interns, %d parties, zero-knowledge pairwise handshakes only\n\n",
		interns, len(parties))

	// ER merge-tree algorithm: no prior knowledge needed.
	res, err := ecsort.SortER(agents, ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	report("SortER (Thm 2)", res, affiliation, parties)

	// The same sort over a live distributed network: every comparison
	// round executes as concurrent two-goroutine protocol sessions, with
	// the one-handshake-per-intern-per-round rule enforced physically.
	network := ecsort.NewAgentNetwork(ecsort.KeyAgents(affiliation, 0xC0FFEE))
	res, err = ecsort.SortERDistributed(network, ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed run: %d protocol sessions over the network, %d rounds\n\n",
		network.Sessions(), res.Stats.Rounds)
	if !ecsort.SameClassification(res.Labels(interns), affiliation) {
		log.Fatal("distributed run mis-grouped interns")
	}

	// Every party has ≈ interns/5 members, so λ = 0.1 is a safe floor and
	// Theorem 4 classifies everyone in O(1) rounds.
	res, err = ecsort.SortConstRoundER(agents, ecsort.ConstRoundOptions{
		Lambda: 0.1, D: 12, MaxRetries: 5, Seed: 3,
	}, ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	report("SortConstRoundER (Thm 4)", res, affiliation, parties)
}

func report(name string, res ecsort.Result, affiliation []int, parties []string) {
	if !ecsort.SameClassification(res.Labels(len(affiliation)), affiliation) {
		log.Fatalf("%s: grouped interns across party lines!", name)
	}
	fmt.Printf("%s: %d handshakes in %d parallel rounds\n",
		name, res.Stats.Comparisons, res.Stats.Rounds)
	for _, group := range res.Canonical() {
		// The algorithm knows only the grouping; we peek at the hidden
		// affiliation of the first member to label the group for display.
		fmt.Printf("  %-12s %d interns (e.g. intern #%d)\n",
			parties[affiliation[group[0]]], len(group), group[0])
	}
	fmt.Println()
}
