// Generalized fault diagnosis: n computers each sit in one of k hidden
// malware states (which worms infect them). Two machines can only probe
// each other mutually — each worm detects its own kind — so a pairwise
// test reveals exactly whether the two infection sets are identical.
// Machines probe each other directly, one probe per machine per round:
// the exclusive-read model.
//
// This generalizes the classic two-state ("good"/"faulty") parallel fault
// diagnosis problem from the first SPAA; with k possible states it is
// equivalence class sorting.
//
//	go run ./examples/faultdiagnosis
package main

import (
	"fmt"
	"log"
	"math/bits"
	"math/rand"

	"ecsort"
)

func main() {
	const machines = 800
	const worms = 3 // up to 2³ = 8 malware states
	rng := rand.New(rand.NewSource(1988))

	fleet := ecsort.RandomInfections(machines, worms, 0.35, rng)
	fmt.Printf("fleet of %d machines, %d candidate worms, %d distinct malware states\n\n",
		machines, worms, fleet.NumStates())

	// The machines know nothing about k; SortER needs no hint.
	res, err := ecsort.SortER(fleet, ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if !ecsort.SameClassification(res.Labels(machines), fleet.TruthLabels()) {
		log.Fatal("diagnosis grouped machines with different infections")
	}
	fmt.Printf("SortER: %d probes in %d parallel rounds\n\n", res.Stats.Comparisons, res.Stats.Rounds)

	states := fleet.States()
	fmt.Println("diagnosis (worm sets recovered per group):")
	for _, group := range res.Canonical() {
		state := states[group[0]]
		fmt.Printf("  state %03b (%d worms): %4d machines\n",
			state, bits.OnesCount64(state), len(group))
	}

	// A fleet operator who knows k can use the CR algorithm instead —
	// e.g. if probes are mediated by a monitor that may query one
	// machine's state many times per round.
	res2, err := ecsort.SortCR(fleet, fleet.NumStates(), ecsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSortCR with k=%d: %d probes in %d rounds (vs %d rounds for ER)\n",
		fleet.NumStates(), res2.Stats.Comparisons, res2.Stats.Rounds, res.Stats.Rounds)
}
